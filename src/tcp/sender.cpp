#include "tcp/sender.h"

#include <algorithm>
#include <cassert>

namespace ccfuzz::tcp {

TcpSender::TcpSender(sim::Simulator& sim, const Config& cfg,
                     std::unique_ptr<CongestionControl> cca,
                     std::function<void(net::Packet&&)> send_data)
    : sim_(sim),
      cfg_(cfg),
      cca_(std::move(cca)),
      send_data_(std::move(send_data)),
      rtt_(cfg.rtt),
      log_(cfg.log_events),
      rto_timer_(sim, [this] { on_rto_timer(); }),
      pacing_timer_(sim, [this] { pacing_fire(); }) {
  st_.mss_bytes = cfg_.mss_bytes;
  wnd_right_ = cfg_.initial_rwnd_segments;
  assert(cca_ && "sender requires a congestion control instance");
  cca_->attach_event_log(&log_);
}

void TcpSender::reset(const Config& cfg, std::unique_ptr<CongestionControl> cca) {
  cfg_ = cfg;
  cca_ = std::move(cca);
  assert(cca_ && "sender requires a congestion control instance");
  rtt_ = RttEstimator(cfg_.rtt);
  log_.reset(cfg_.log_events);
  // Timer handles from a previous run are pre-reset ids; cancelling them is
  // a guaranteed no-op in the generation-tagged event queue.
  rto_timer_.cancel();
  pacing_timer_.cancel();

  st_ = SenderState{};
  st_.mss_bytes = cfg_.mss_bytes;
  sink_ = nullptr;  // observers are per run; the harness re-attaches
  segs_.recycle();
  snd_una_ = 0;
  snd_nxt_ = 0;
  wnd_right_ = cfg_.initial_rwnd_segments;
  fack_ = 0;
  recovery_point_ = -1;
  backoff_ = 0;
  rto_count_ = 0;
  fast_recovery_count_ = 0;
  spurious_retx_ = 0;
  next_tx_id_ = 0;
  delivered_ = 0;
  delivered_mstamp_ = TimeNs(-1);
  first_tx_mstamp_ = TimeNs(-1);
  started_ = false;
  cca_->attach_event_log(&log_);
}

void TcpSender::start(TimeNs at) {
  sim_.schedule_at(at, [this] {
    refresh_state();
    cca_->init(st_);
    started_ = true;
    try_send();
  });
  if (!cfg_.stop.is_infinite()) {
    sim_.schedule_at(cfg_.stop, [this] { stop(); });
  }
}

void TcpSender::stop() {
  started_ = false;
  rto_timer_.cancel();
  pacing_timer_.cancel();
}

void TcpSender::refresh_state() {
  st_.now = sim_.now();
  st_.delivered = delivered_;
  st_.packets_out = snd_nxt_ - snd_una_;
  st_.srtt = rtt_.srtt();
  st_.last_rtt = rtt_.last_rtt();
  st_.min_rtt = rtt_.min_rtt();
  // sacked_out / lost_out / retrans_out / in_recovery / in_loss / counters
  // are maintained incrementally where they change.
}

// ---------------------------------------------------------------------------
// Transmission path
// ---------------------------------------------------------------------------

bool TcpSender::has_retransmit_work() const {
  return next_retransmit_seq() >= 0;
}

SeqNr TcpSender::next_retransmit_seq() const {
  // lost_out counts exactly the segments with the lost mark still set in
  // [snd_una, snd_nxt) (marking increments it; SACK/cumulative delivery
  // decrement it), so the common no-loss case skips the window scan — this
  // predicate runs on every transmission opportunity and was the single
  // hottest function in the simulated-second profile.
  if (st_.lost_out == 0) return -1;
  // Lowest lost segment without an outstanding retransmission.
  for (SeqNr s = snd_una_; s < snd_nxt_; ++s) {
    const Segment& sg = seg(s);
    if (sg.lost && !sg.retrans_out && !sg.sacked && !sg.delivered_flag) return s;
  }
  return -1;
}

bool TcpSender::can_transmit() const {
  if (!started_) return false;
  if (st_.in_flight() >= cca_->cwnd_segments()) return false;
  if (has_retransmit_work()) return true;
  // New data also needs room in the peer's advertised window. With a
  // persistent hole the window closes and only retransmissions may flow
  // (the RTO on the lost head doubles as the zero-window probe).
  return snd_nxt_ < cfg_.total_segments && snd_nxt_ < wnd_right_;
}

void TcpSender::send_segment(SeqNr s, bool is_retx) {
  const TimeNs now = sim_.now();
  const bool was_idle = (snd_nxt_ == snd_una_);  // Linux: !tp->packets_out
  if (!is_retx) {
    assert(s == snd_nxt_);
    segs_.append(snd_una_, s);
    ++snd_nxt_;
    st_.packets_out = snd_nxt_ - snd_una_;
  }
  Segment& sg = seg(s);

  // tcp_rate_skb_sent: on an idle (re)start, reset the rate pipeline clock.
  if (was_idle || delivered_mstamp_ < TimeNs::zero()) {
    first_tx_mstamp_ = now;
    delivered_mstamp_ = now;
  }
  sg.tx_first_tx_mstamp = first_tx_mstamp_;
  sg.tx_delivered_mstamp = delivered_mstamp_;
  sg.tx_delivered = delivered_;  // the "prior delivered" snapshot
  sg.last_sent = now;
  sg.last_tx_id = next_tx_id_++;
  if (sg.tx_count == 0) sg.first_sent = now;
  ++sg.tx_count;

  ++st_.total_sent;
  if (is_retx) {
    ++st_.total_retx;
    if (!sg.retrans_out) {
      sg.retrans_out = true;
      ++st_.retrans_out;
    }
    log_.emit(now, TcpEventType::kRetransmit, s);
  } else {
    log_.emit(now, TcpEventType::kSend, s);
  }

  net::Packet p;
  // Transmission ids are per flow; the flow index in the top bits keeps ids
  // simulation-unique (flow 0 keeps the single-flow id layout).
  p.id = (static_cast<std::uint64_t>(cfg_.flow_index) << 48) |
         (static_cast<std::uint64_t>(sg.last_tx_id) + 1);
  p.flow = net::FlowId::kCcaData;
  p.flow_index = cfg_.flow_index;
  p.size_bytes = cfg_.mss_bytes;
  p.created_at = now;
  p.tcp.seq = s;
  p.tcp.tx_id = sg.last_tx_id;
  send_data_(std::move(p));

  refresh_state();
  cca_->on_sent(st_, s, is_retx);

  // RTO management: arm if idle; reset fully when retransmitting the head
  // (Linux tcp_xmit_retransmit_queue → tcp_rearm_rto). This produces the
  // paper's "RTO timer set for T1 + minRTO" after a fast retransmit at T1.
  if (is_retx && s == snd_una_) {
    arm_rto(/*force=*/true);
  } else {
    arm_rto(/*force=*/false);
  }
}

void TcpSender::try_send() {
  if (!started_) return;
  const DataRate rate = cca_->pacing_rate();
  if (rate.is_zero()) {
    // Pure ACK clocking: transmit everything the window allows.
    while (can_transmit()) {
      const SeqNr r = next_retransmit_seq();
      send_segment(r >= 0 ? r : snd_nxt_, r >= 0);
    }
    return;
  }
  // Paced: if the pacing timer is idle, release one segment now and arm the
  // timer for the next; otherwise the pending timer will pick up the work.
  if (!pacing_timer_.pending() && can_transmit()) {
    const SeqNr r = next_retransmit_seq();
    send_segment(r >= 0 ? r : snd_nxt_, r >= 0);
    const DataRate after = cca_->pacing_rate();
    if (!after.is_zero()) {
      pacing_timer_.arm(after.transfer_time(cfg_.mss_bytes));
    }
  }
}

void TcpSender::pacing_fire() {
  if (!can_transmit()) return;  // go idle; next ACK/RTO restarts pacing
  const SeqNr r = next_retransmit_seq();
  send_segment(r >= 0 ? r : snd_nxt_, r >= 0);
  const DataRate after = cca_->pacing_rate();
  if (!after.is_zero()) {
    pacing_timer_.arm(after.transfer_time(cfg_.mss_bytes));
  }
}

void TcpSender::arm_rto(bool force) {
  if (snd_nxt_ == snd_una_ || !started_) {
    rto_timer_.cancel();
    return;
  }
  if (force || !rto_timer_.pending()) {
    // Restarted on every cumulative ACK (tcp_rearm_rto): with min_rto >=
    // 200 ms the expiry always lands in the event core's far band, so this
    // per-ACK cancel + re-arm is O(1) and leaves no stale handle in the
    // near heap — the pattern BM_EventQueueRtoHeavy tracks.
    rto_timer_.arm(rtt_.rto_backed_off(backoff_));
  }
}

// ---------------------------------------------------------------------------
// RTO
// ---------------------------------------------------------------------------

void TcpSender::on_rto_timer() {
  const TimeNs now = sim_.now();
  ++rto_count_;
  ++backoff_;
  log_.emit(now, TcpEventType::kRto, snd_una_, static_cast<double>(backoff_));

  // tcp_enter_loss: clear retransmission marks (those copies are presumed
  // lost) and mark every non-SACKed outstanding segment lost. SACKed marks
  // are retained (SACK is enabled, per the paper's Linux-default setup).
  for (SeqNr s = snd_una_; s < snd_nxt_; ++s) {
    Segment& sg = seg(s);
    if (sg.retrans_out) sg.retrans_out = false;
    if (!sg.sacked && !sg.lost && !sg.delivered_flag) {
      sg.lost = true;
      ++st_.lost_out;
      log_.emit(now, TcpEventType::kMarkLost, s);
    }
  }
  st_.retrans_out = 0;

  st_.in_loss = true;
  st_.in_recovery = false;
  recovery_point_ = snd_nxt_;
  refresh_state();
  cca_->on_congestion_event(st_, CongestionEvent::kRto);
  if (sink_) sink_->on_congestion(CongestionEvent::kRto, backoff_);

  // Back off the timer for the next expiry, then retransmit the head.
  arm_rto(/*force=*/true);
  try_send();
}

// ---------------------------------------------------------------------------
// ACK processing
// ---------------------------------------------------------------------------

void TcpSender::deliver_segment(Segment& sg, TimeNs now, RateSampleBuilder& rsb) {
  sg.delivered_flag = true;
  ++delivered_;
  delivered_mstamp_ = now;
  // tcp_rate_skb_delivered: keep the sample from the skb that was sent with
  // the highest delivered-count snapshot.
  if (sg.tx_delivered_mstamp >= TimeNs::zero()) {
    if (!rsb.has || sg.tx_delivered > rsb.prior_delivered) {
      rsb.has = true;
      rsb.prior_delivered = sg.tx_delivered;
      rsb.prior_mstamp = sg.tx_delivered_mstamp;
      rsb.is_retrans = sg.tx_count > 1;
      rsb.interval_snd = sg.last_sent - sg.tx_first_tx_mstamp;
      first_tx_mstamp_ = sg.last_sent;
    }
    sg.tx_delivered_mstamp = TimeNs(-1);  // sample each skb once
  }
  // Spurious-retransmission detection (diagnostic): the segment was
  // retransmitted but this delivery must have been triggered by an earlier
  // copy — the ACK arrived sooner than any network round trip could allow.
  if (sg.tx_count > 1 && rtt_.min_rtt() >= DurationNs::zero() &&
      now - sg.last_sent < rtt_.min_rtt()) {
    ++spurious_retx_;
    log_.emit(now, TcpEventType::kSpuriousRetx, -1,
              static_cast<double>(sg.tx_count));
  }
}

void TcpSender::mark_losses_from_fack(std::int64_t* newly_lost) {
  // FACK: segments more than dupack_threshold below the forward-most SACK
  // are lost. Retransmitted copies are not re-marked; their loss is only
  // detectable by RTO (this is what the shrew attack leans on).
  const SeqNr limit = fack_ - cfg_.dupack_threshold;
  for (SeqNr s = snd_una_; s < std::min(limit, snd_nxt_); ++s) {
    Segment& sg = seg(s);
    if (sg.sacked || sg.lost || sg.delivered_flag || sg.retrans_out) continue;
    sg.lost = true;
    ++st_.lost_out;
    ++(*newly_lost);
    log_.emit(sim_.now(), TcpEventType::kMarkLost, s);
  }
}

void TcpSender::maybe_enter_recovery(TimeNs now, std::int64_t newly_lost) {
  if (newly_lost <= 0 || st_.in_recovery || st_.in_loss) return;
  st_.in_recovery = true;
  recovery_point_ = snd_nxt_;
  ++fast_recovery_count_;
  log_.emit(now, TcpEventType::kEnterRecovery, recovery_point_);
  refresh_state();
  cca_->on_congestion_event(st_, CongestionEvent::kEnterRecovery);
  if (sink_) sink_->on_congestion(CongestionEvent::kEnterRecovery, backoff_);
}

void TcpSender::maybe_exit_recovery(TimeNs now) {
  if (!(st_.in_recovery || st_.in_loss)) return;
  if (snd_una_ < recovery_point_) return;
  const bool was_loss = st_.in_loss;
  st_.in_recovery = false;
  st_.in_loss = false;
  recovery_point_ = -1;
  log_.emit(now, was_loss ? TcpEventType::kExitLoss : TcpEventType::kExitRecovery,
            snd_una_);
  refresh_state();
  const CongestionEvent ev =
      was_loss ? CongestionEvent::kExitLoss : CongestionEvent::kExitRecovery;
  cca_->on_congestion_event(st_, ev);
  if (sink_) sink_->on_congestion(ev, backoff_);
}

RateSample TcpSender::generate_rate_sample(const RateSampleBuilder& rsb,
                                           std::int64_t acked_sacked,
                                           std::int64_t losses,
                                           std::int64_t prior_in_flight,
                                           DurationNs rtt_sample) {
  RateSample rs;
  rs.acked_sacked = acked_sacked;
  rs.losses = losses;
  rs.prior_in_flight = prior_in_flight;
  rs.rtt = rtt_sample;
  if (!rsb.has) return rs;  // delivered = -1: no sample this ACK
  rs.prior_delivered = rsb.prior_delivered;
  rs.prior_time = rsb.prior_mstamp;
  rs.is_retrans = rsb.is_retrans;
  rs.delivered = delivered_ - rsb.prior_delivered;
  const DurationNs ack_interval = delivered_mstamp_ - rsb.prior_mstamp;
  rs.interval = std::max(rsb.interval_snd, ack_interval);
  // Linux flags samples shorter than the observed min RTT as unreliable
  // (tcp_rate_gen invalidates them). We keep the data and set the flag so
  // the CCA can apply either the strict Linux policy or the looser ns-3 one
  // the paper's findings exercise (RateSample::below_min_rtt).
  rs.below_min_rtt =
      rtt_.min_rtt() >= DurationNs::zero() && rs.interval < rtt_.min_rtt();
  if (rs.interval.ns() > 0) {
    rs.delivery_rate_pps =
        static_cast<double>(rs.delivered) / rs.interval.to_seconds();
  }
  return rs;
}

void TcpSender::on_ack_packet(const net::Packet& ack) {
  const TimeNs now = sim_.now();
  const SeqNr ack_seq = ack.tcp.ack;
  const std::int64_t prior_in_flight = st_.in_flight();

  // 0. Flow-control window update. The right edge never retreats
  // (RFC 793); ACKs without a window field mean "unlimited".
  if (ack.tcp.wnd >= 0) {
    wnd_right_ = std::max(wnd_right_, ack_seq + ack.tcp.wnd);
  } else {
    wnd_right_ = std::numeric_limits<SeqNr>::max();
  }

  RateSampleBuilder rsb;
  std::int64_t newly_acked = 0;
  std::int64_t newly_sacked = 0;
  std::int64_t newly_lost = 0;
  DurationNs rtt_sample(-1);

  // 1. Cumulative acknowledgement.
  if (ack_seq > snd_una_) {
    for (SeqNr s = snd_una_; s < std::min(ack_seq, snd_nxt_); ++s) {
      Segment& sg = seg(s);
      if (!sg.delivered_flag) deliver_segment(sg, now, rsb);
      if (sg.sacked) --st_.sacked_out;
      if (sg.lost) --st_.lost_out;
      if (sg.retrans_out) --st_.retrans_out;
      if (sg.tx_count == 1) rtt_sample = now - sg.last_sent;  // Karn
      ++newly_acked;
    }
    // Ring storage is keyed by absolute seq: advancing the left edge is pure
    // index arithmetic, the retired slots are recycled on wrap-around.
    const std::int64_t advance = std::min(ack_seq, snd_nxt_) - snd_una_;
    snd_una_ += advance;
    st_.packets_out = snd_nxt_ - snd_una_;
    backoff_ = 0;  // Karn: fresh data acknowledged resets backoff
    fack_ = std::max(fack_, snd_una_);
  }

  // 2. SACK blocks.
  for (int i = 0; i < ack.tcp.n_sacks; ++i) {
    const net::SackBlock& b = ack.tcp.sacks[i];
    const SeqNr lo = std::max<SeqNr>(b.start, snd_una_);
    const SeqNr hi = std::min<SeqNr>(b.end, snd_nxt_);
    for (SeqNr s = lo; s < hi; ++s) {
      Segment& sg = seg(s);
      if (sg.sacked || sg.delivered_flag) continue;
      sg.sacked = true;
      ++st_.sacked_out;
      if (sg.lost) {
        sg.lost = false;
        --st_.lost_out;
      }
      if (sg.retrans_out) {
        sg.retrans_out = false;
        --st_.retrans_out;
      }
      deliver_segment(sg, now, rsb);
      if (sg.tx_count == 1) rtt_sample = now - sg.last_sent;
      ++newly_sacked;
      fack_ = std::max(fack_, s + 1);
      log_.emit(now, TcpEventType::kSack, s);
    }
  }

  // 3. RTT estimation (never from retransmitted segments).
  if (rtt_sample >= DurationNs::zero()) rtt_.on_measurement(rtt_sample);

  // 4. SACK-scoreboard loss marking.
  mark_losses_from_fack(&newly_lost);

  // 5. Recovery state machine.
  maybe_enter_recovery(now, newly_lost);
  maybe_exit_recovery(now);

  // 6. Rate sample (tcp_rate_gen) + CCA callback.
  refresh_state();
  const RateSample rs = generate_rate_sample(
      rsb, newly_acked + newly_sacked, newly_lost, prior_in_flight, rtt_sample);

  AckEvent ev;
  ev.now = now;
  ev.cumulative_ack = snd_una_;
  ev.newly_acked = newly_acked;
  ev.newly_sacked = newly_sacked;
  ev.is_duplicate = (newly_acked == 0);
  log_.emit(now, ev.is_duplicate ? TcpEventType::kDupAck : TcpEventType::kAck,
            snd_una_, static_cast<double>(newly_acked + newly_sacked));

  cca_->on_ack(st_, ev, rs);
  if (sink_) sink_->on_ack_sample(st_, *cca_, rtt_sample);

  // 7. RTO maintenance: restart on forward progress, stop when idle.
  if (newly_acked > 0) {
    arm_rto(/*force=*/true);
  }
  if (snd_nxt_ == snd_una_) rto_timer_.cancel();

  // 8. Transmit whatever the window / pacer now allows.
  try_send();
}

}  // namespace ccfuzz::tcp
