// RFC 6298 RTT estimation and RTO computation.
//
// The paper configures min-RTO = 1 s ("as per RFC 6298/2.4; Linux uses
// 200 ms"); both are expressible here. Exponential backoff is owned by the
// sender (Karn's algorithm: backoff resets when new data is cumulatively
// acknowledged).
#pragma once

#include <algorithm>

#include "util/time.h"

namespace ccfuzz::tcp {

/// Smoothed RTT / RTT variance estimator producing the base RTO.
class RttEstimator {
 public:
  struct Config {
    DurationNs min_rto = DurationNs::seconds(1);
    DurationNs max_rto = DurationNs::seconds(60);
    DurationNs initial_rto = DurationNs::seconds(1);
    /// Clock granularity G in the RFC formula max(G, 4*rttvar).
    DurationNs granularity = DurationNs::millis(1);
  };

  RttEstimator() : RttEstimator(Config{}) {}
  explicit RttEstimator(const Config& cfg) : cfg_(cfg) {}

  /// Feeds one RTT measurement (from a never-retransmitted segment).
  void on_measurement(DurationNs rtt) {
    if (rtt < DurationNs::zero()) return;
    last_rtt_ = rtt;
    if (min_rtt_ < DurationNs::zero() || rtt < min_rtt_) min_rtt_ = rtt;
    if (srtt_ < DurationNs::zero()) {
      srtt_ = rtt;
      rttvar_ = DurationNs(rtt.ns() / 2);
    } else {
      const std::int64_t err = std::abs(srtt_.ns() - rtt.ns());
      rttvar_ = DurationNs((3 * rttvar_.ns() + err) / 4);
      srtt_ = DurationNs((7 * srtt_.ns() + rtt.ns()) / 8);
    }
  }

  /// Base RTO (before exponential backoff), clamped to [min_rto, max_rto].
  DurationNs rto() const {
    if (srtt_ < DurationNs::zero()) return cfg_.initial_rto;
    const DurationNs var_term =
        std::max(cfg_.granularity, DurationNs(4 * rttvar_.ns()));
    return std::clamp(srtt_ + var_term, cfg_.min_rto, cfg_.max_rto);
  }

  /// RTO after `backoff` doublings, still clamped to max_rto.
  DurationNs rto_backed_off(int backoff) const {
    DurationNs r = rto();
    for (int i = 0; i < backoff && r < cfg_.max_rto; ++i) {
      r = std::min(DurationNs(r.ns() * 2), cfg_.max_rto);
    }
    return r;
  }

  DurationNs srtt() const { return srtt_; }
  DurationNs rttvar() const { return rttvar_; }
  DurationNs last_rtt() const { return last_rtt_; }
  DurationNs min_rtt() const { return min_rtt_; }
  bool has_sample() const { return srtt_ >= DurationNs::zero(); }
  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  DurationNs srtt_ = DurationNs(-1);
  DurationNs rttvar_ = DurationNs(-1);
  DurationNs last_rtt_ = DurationNs(-1);
  DurationNs min_rtt_ = DurationNs(-1);
};

}  // namespace ccfuzz::tcp
