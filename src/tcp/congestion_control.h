// Congestion control plugin interface, modeled on Linux tcp_congestion_ops.
//
// A CCA observes ACK events (with delivery-rate samples) and congestion
// events, and exposes a congestion window plus an optional pacing rate.
// Implementations live in src/cca/ (Reno, CUBIC, BBR); the sender drives
// them identically, so a user-defined CCA can be fuzzed by implementing this
// interface (see examples/custom_cca.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

#include "tcp/types.h"
#include "util/time.h"

namespace ccfuzz::tcp {

class TcpEventLog;

/// Congestion events delivered to the CCA (subset of Linux CA events).
enum class CongestionEvent {
  kEnterRecovery,  ///< fast retransmit: entering loss recovery
  kExitRecovery,   ///< recovery point cumulatively acknowledged
  kRto,            ///< retransmission timeout fired (CA_Loss)
  kExitLoss,       ///< RTO recovery completed
};

/// Abstract congestion control algorithm.
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Called once before the first transmission. `st` remains valid for the
  /// sender's lifetime and is updated in place before every callback.
  virtual void init(const SenderState& st) { (void)st; }

  /// Main per-ACK hook, invoked after SACK/loss processing and rate-sample
  /// generation (mirrors Linux cong_control / cong_avoid + in_ack_event).
  virtual void on_ack(const SenderState& st, const AckEvent& ev,
                      const RateSample& rs) = 0;

  /// Congestion state transitions (fast retransmit, RTO, recovery exits).
  virtual void on_congestion_event(const SenderState& st, CongestionEvent ev) {
    (void)st;
    (void)ev;
  }

  /// Called after every data transmission (new or retransmit). BBR uses
  /// this only indirectly; provided for algorithms that track sends.
  virtual void on_sent(const SenderState& st, SeqNr seq, bool is_retransmit) {
    (void)st;
    (void)seq;
    (void)is_retransmit;
  }

  /// Current congestion window in segments (>= 1).
  virtual std::int64_t cwnd_segments() const = 0;

  /// Pacing rate; DataRate::zero() means "not paced" (pure ACK clocking,
  /// used by Reno/CUBIC). BBR always paces.
  virtual DataRate pacing_rate() const { return DataRate::zero(); }

  /// Slow-start threshold in segments, for introspection; int64 max when
  /// unused (BBR).
  virtual std::int64_t ssthresh_segments() const {
    return std::numeric_limits<std::int64_t>::max();
  }

  /// Algorithm name for logs and reports.
  virtual const char* name() const = 0;

  // ---- Introspection hooks for tests / analysis (optional) ----

  /// Bottleneck bandwidth estimate in segments/sec (0 if not modeled).
  virtual double bw_estimate_pps() const { return 0.0; }
  /// Min-RTT estimate used by the model; -1 if not modeled.
  virtual DurationNs min_rtt_estimate() const { return DurationNs(-1); }
  /// The sender offers its event log so model-internal transitions (BBR
  /// probe rounds, bandwidth samples) can appear on analysis timelines.
  virtual void attach_event_log(TcpEventLog* log) { (void)log; }

  /// Compact id of the algorithm's internal mode for behavioral coverage
  /// (coverage::BehaviorProbe bins transitions between successive values).
  /// Return a small non-negative id (< 8); -1 (default) means "no internal
  /// mode machine" and lets the probe fall back to the generic congestion-
  /// avoidance state derived from SenderState.
  virtual int probe_state() const { return -1; }
};

/// Factory signature used by scenarios and the fuzzer: each simulation gets
/// a fresh CCA instance.
using CcaFactory = std::function<std::unique_ptr<CongestionControl>()>;

}  // namespace ccfuzz::tcp
