// TCP sender: reliability, SACK scoreboard, loss recovery, RTO with
// exponential backoff, delivery-rate sampling, and CCA-driven transmission
// (windowed and/or paced).
//
// The implementation mirrors the Linux machinery the paper's findings depend
// on:
//  - per-segment delivery snapshots are restamped on *every* transmission
//    (tcp_rate_skb_sent), so a spurious retransmission corrupts the rate
//    sample of a late-arriving SACK for the original copy (§4.1 BBR stall);
//  - tcp_enter_loss marks all non-SACKed outstanding segments lost at RTO
//    and clears retransmission marks, producing those spurious
//    retransmissions in the first place;
//  - FACK-style loss marking (>= dupthresh segments SACKed above) drives
//    fast retransmit; a lost retransmission is only recovered by RTO, which
//    is what the low-rate attack (§4.3) and the CUBIC finding (§4.2) exploit.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"
#include "tcp/behavior_sink.h"
#include "tcp/congestion_control.h"
#include "tcp/event_log.h"
#include "tcp/rtt_estimator.h"
#include "tcp/types.h"
#include "util/time.h"

namespace ccfuzz::tcp {

/// Sender endpoint of the CCA flow under test.
class TcpSender {
 public:
  struct Config {
    /// Application data volume in segments; default: unbounded source.
    std::int64_t total_segments = std::numeric_limits<std::int64_t>::max();
    std::int32_t mss_bytes = net::kDefaultPacketBytes;
    /// Initial congestion window hint passed to the CCA (Linux: 10).
    std::int64_t initial_cwnd = 10;
    /// FACK reordering threshold in segments (classic dupack threshold 3).
    int dupack_threshold = 3;
    /// Peer receive window assumed before the first ACK arrives; ACKs with
    /// TcpHeader::wnd >= 0 update it. A persistent hole at the receiver
    /// closes the window and silences new data — the flow-control half of
    /// the paper's stall scenarios.
    std::int64_t initial_rwnd_segments = 87;
    RttEstimator::Config rtt{};
    /// Record detailed events (timeline figures); counters are always kept.
    bool log_events = false;
    /// Which competing flow this sender is (multi-flow scenarios). Tags every
    /// emitted packet and namespaces transmission ids; flow 0 is bit-
    /// compatible with the single-flow layout.
    net::FlowIndex flow_index = 0;
    /// Absolute stop time: the sender ceases transmitting (and cancels its
    /// timers) at this instant. Infinite = run for the whole simulation.
    TimeNs stop = TimeNs::infinite();
  };

  /// `send_data` injects a data packet toward the bottleneck queue.
  TcpSender(sim::Simulator& sim, const Config& cfg,
            std::unique_ptr<CongestionControl> cca,
            std::function<void(net::Packet&&)> send_data);

  /// Reinitializes the sender for a fresh run — every observable field is
  /// exactly as after construction with (cfg, cca), but the segment ring
  /// keeps its slab, so warm reuse (scenario::RunContext) replays slow start
  /// without allocator traffic. The simulator must have been reset (no
  /// pending timers of this sender survive); the send callback is kept.
  void reset(const Config& cfg, std::unique_ptr<CongestionControl> cca);

  /// Schedules connection start (first transmission) at time `at`, and the
  /// stop event when Config::stop is finite.
  void start(TimeNs at);

  /// Halts the flow: cancels timers and stops all further transmissions.
  /// Arriving ACKs are still processed for bookkeeping. Scheduled
  /// automatically at Config::stop.
  void stop();

  /// Handles an arriving ACK (cumulative + SACK blocks).
  void on_ack_packet(const net::Packet& ack);

  /// Attaches a passive behavior observer (nullptr detaches). Cleared by
  /// reset(); the harness re-attaches per run. The sink must not mutate the
  /// simulation — golden fingerprints pin sink-on == sink-off.
  void set_behavior_sink(BehaviorSink* sink) { sink_ = sink; }

  // ---- Introspection ----
  const SenderState& state() const { return st_; }
  const RttEstimator& rtt_estimator() const { return rtt_; }
  CongestionControl& cca() { return *cca_; }
  const CongestionControl& cca() const { return *cca_; }
  TcpEventLog& log() { return log_; }
  const TcpEventLog& log() const { return log_; }

  SeqNr snd_una() const { return snd_una_; }
  SeqNr snd_nxt() const { return snd_nxt_; }
  /// Right edge of the peer-advertised window (flow-control limit).
  SeqNr window_right_edge() const { return wnd_right_; }
  std::int64_t delivered() const { return st_.delivered; }
  std::int64_t total_sent() const { return st_.total_sent; }
  std::int64_t total_retransmissions() const { return st_.total_retx; }
  std::int64_t rto_count() const { return rto_count_; }
  std::int64_t fast_retransmit_entries() const { return fast_recovery_count_; }
  std::int64_t spurious_retx_count() const { return spurious_retx_; }
  int rto_backoff() const { return backoff_; }

 private:
  /// Per-segment bookkeeping — the simulated SKB.
  struct Segment {
    TimeNs first_sent = TimeNs::zero();
    TimeNs last_sent = TimeNs::zero();
    // tcp_rate_skb_sent snapshots, restamped on every transmission.
    // tx_delivered_mstamp < 0 means "already consumed for a rate sample".
    TimeNs tx_first_tx_mstamp = TimeNs::zero();
    TimeNs tx_delivered_mstamp = TimeNs(-1);
    std::int64_t tx_delivered = 0;  ///< the paper's "prior delivered"
    std::int64_t last_tx_id = -1;
    int tx_count = 0;
    bool sacked = false;
    bool lost = false;
    bool retrans_out = false;  ///< retransmission currently in flight
    bool delivered_flag = false;
  };

  /// Accumulates the per-ACK rate sample (Linux tcp_rate_skb_delivered).
  struct RateSampleBuilder {
    bool has = false;
    std::int64_t prior_delivered = 0;
    TimeNs prior_mstamp = TimeNs::zero();
    DurationNs interval_snd = DurationNs(-1);
    bool is_retrans = false;
  };

  /// Segment storage keyed by absolute sequence number: a power-of-two slab
  /// where seq `s` lives in slot `s & mask`. Valid while the live window
  /// [snd_una, snd_nxt) fits the capacity, which append() guarantees by
  /// re-homing the window into a doubled slab when needed. Cumulative-ack
  /// advance is pure index arithmetic — unlike the std::deque predecessor,
  /// steady-state sending never touches the allocator (growth stops at the
  /// flow's in-flight high-water mark).
  class SegmentRing {
   public:
    Segment& at(SeqNr s) {
      return slots_[static_cast<std::size_t>(s) & mask_];
    }
    const Segment& at(SeqNr s) const {
      return slots_[static_cast<std::size_t>(s) & mask_];
    }
    /// Value-initializes the slot for `s` (the window's right edge); `lo` is
    /// the live left edge, consulted only when the slab must grow.
    Segment& append(SeqNr lo, SeqNr s) {
      if (static_cast<std::size_t>(s - lo) >= slots_.size()) grow(lo, s);
      Segment& sg = at(s);
      sg = Segment{};
      return sg;
    }

    /// Nothing to wipe between runs: slots are value-initialized by append()
    /// before first use and the live window restarts at [0, 0). Kept as an
    /// explicit hook so reset() documents the slab reuse.
    void recycle() {}

   private:
    void grow(SeqNr lo, SeqNr hi) {
      std::size_t want = slots_.empty() ? 128 : slots_.size() * 2;
      const std::size_t need = static_cast<std::size_t>(hi - lo) + 1;
      while (want < need) want *= 2;
      std::vector<Segment> next(want);
      for (SeqNr s = lo; s < hi; ++s) {
        next[static_cast<std::size_t>(s) & (want - 1)] = at(s);
      }
      slots_ = std::move(next);
      mask_ = slots_.size() - 1;
    }

    std::vector<Segment> slots_;
    std::size_t mask_ = 0;
  };

  Segment& seg(SeqNr s) { return segs_.at(s); }
  const Segment& seg(SeqNr s) const { return segs_.at(s); }
  bool has_seg(SeqNr s) const { return s >= snd_una_ && s < snd_nxt_; }

  void refresh_state();
  void deliver_segment(Segment& sg, TimeNs now, RateSampleBuilder& rsb);
  void mark_losses_from_fack(std::int64_t* newly_lost);
  void maybe_enter_recovery(TimeNs now, std::int64_t newly_lost);
  void maybe_exit_recovery(TimeNs now);
  RateSample generate_rate_sample(const RateSampleBuilder& rsb,
                                  std::int64_t acked_sacked,
                                  std::int64_t losses,
                                  std::int64_t prior_in_flight,
                                  DurationNs rtt_sample);

  // Transmission path.
  bool can_transmit() const;
  bool has_retransmit_work() const;
  SeqNr next_retransmit_seq() const;
  void send_segment(SeqNr s, bool is_retx);
  void try_send();
  void pacing_fire();
  void arm_rto(bool force);
  void on_rto_timer();

  sim::Simulator& sim_;
  Config cfg_;
  BehaviorSink* sink_ = nullptr;
  std::unique_ptr<CongestionControl> cca_;
  std::function<void(net::Packet&&)> send_data_;
  RttEstimator rtt_;
  TcpEventLog log_;
  sim::Timer rto_timer_;
  sim::Timer pacing_timer_;

  SenderState st_{};
  SegmentRing segs_;          // segments [snd_una_, snd_nxt_), keyed by seq
  SeqNr snd_una_ = 0;
  SeqNr snd_nxt_ = 0;
  SeqNr wnd_right_ = 0;       // flow-control right edge (snd_una + rwnd)
  SeqNr fack_ = 0;            // highest SACKed seq + 1 (forward ack)
  SeqNr recovery_point_ = -1; // snd_nxt at recovery entry
  int backoff_ = 0;           // RTO exponential backoff exponent
  std::int64_t rto_count_ = 0;
  std::int64_t fast_recovery_count_ = 0;
  std::int64_t spurious_retx_ = 0;
  std::int64_t next_tx_id_ = 0;

  // tcp_rate.c flow-level state. Negative mstamp == "pipeline not started".
  std::int64_t delivered_ = 0;
  TimeNs delivered_mstamp_ = TimeNs(-1);
  TimeNs first_tx_mstamp_ = TimeNs(-1);

  bool started_ = false;
};

}  // namespace ccfuzz::tcp
