#include "tcp/event_log.h"

#include <cstdio>

namespace ccfuzz::tcp {

const char* to_string(TcpEventType t) {
  switch (t) {
    case TcpEventType::kSend: return "SEND";
    case TcpEventType::kRetransmit: return "RETX";
    case TcpEventType::kSpuriousRetx: return "SPURIOUS_RETX";
    case TcpEventType::kAck: return "ACK";
    case TcpEventType::kDupAck: return "DUPACK";
    case TcpEventType::kSack: return "SACK";
    case TcpEventType::kMarkLost: return "MARK_LOST";
    case TcpEventType::kEnterRecovery: return "ENTER_RECOVERY";
    case TcpEventType::kExitRecovery: return "EXIT_RECOVERY";
    case TcpEventType::kRto: return "RTO";
    case TcpEventType::kExitLoss: return "EXIT_LOSS";
    case TcpEventType::kProbeRoundEnd: return "PROBE_ROUND_END";
    case TcpEventType::kBwSample: return "BW_SAMPLE";
    case TcpEventType::kBwFilterDrop: return "BW_FILTER_DROP";
    case TcpEventType::kProbeRttEnter: return "PROBE_RTT_ENTER";
    case TcpEventType::kProbeRttExit: return "PROBE_RTT_EXIT";
  }
  return "UNKNOWN";
}

std::string TcpEvent::to_string() const {
  char buf[128];
  if (seq >= 0) {
    std::snprintf(buf, sizeof(buf), "%10.6fs %-16s seq=%lld val=%.3f",
                  time.to_seconds(), ccfuzz::tcp::to_string(type),
                  static_cast<long long>(seq), value);
  } else {
    std::snprintf(buf, sizeof(buf), "%10.6fs %-16s val=%.3f",
                  time.to_seconds(), ccfuzz::tcp::to_string(type), value);
  }
  return buf;
}

}  // namespace ccfuzz::tcp
