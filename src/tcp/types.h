// Shared TCP types: rate samples (Linux tcp_rate.c semantics), ACK events,
// and the sender-state snapshot exposed to congestion control modules.
//
// Sequence numbers are segment-granularity: 1 seq == 1 MSS segment. The
// "delivered" counter counts segments delivered (cumulatively ACKed or
// SACKed), mirroring Linux's tp->delivered in packets.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace ccfuzz::tcp {

using SeqNr = std::int64_t;

/// Delivery rate sample generated per ACK event, following Linux
/// tcp_rate.c. BBR's probe-round clocking consumes `prior_delivered`:
/// a probe round ends when prior_delivered >= next_rtt_delivered. Because
/// every (re)transmission restamps the per-segment delivered snapshot, a
/// spurious retransmission followed by the SACK of the original copy yields
/// a corrupted sample — the mechanism behind the paper's BBR stall (§4.1).
struct RateSample {
  /// Segments delivered over the sample interval; -1 when no sample.
  std::int64_t delivered = -1;
  /// Sample interval: max(send interval, ack interval); invalid if <= 0.
  DurationNs interval = DurationNs(-1);
  /// tp->delivered when the most-recently-delivered segment was last sent.
  std::int64_t prior_delivered = 0;
  /// tp->delivered_mstamp at that send.
  TimeNs prior_time = TimeNs::zero();
  /// Delivery rate in segments/second; 0 when invalid.
  double delivery_rate_pps = 0.0;
  /// Segments newly cumulatively-ACKed or SACKed by this ACK.
  std::int64_t acked_sacked = 0;
  /// Segments newly marked lost by this ACK's SACK processing.
  std::int64_t losses = 0;
  /// RTT measured from a non-retransmitted segment; -1 if none this ACK.
  DurationNs rtt = DurationNs(-1);
  /// True if the sampled segment had been retransmitted.
  bool is_retrans = false;
  /// True if the sampled segment was sent while application-limited.
  bool is_app_limited = false;
  /// Packets in flight just before this ACK was processed.
  std::int64_t prior_in_flight = 0;
  /// True when interval < the observed min RTT. Linux discards such samples
  /// (tcp_rate_gen sets interval_us = -1); ns-3's port does not, and the
  /// paper's BBR stall depends on consuming them. The sender keeps the data
  /// and lets the CCA choose its policy (Bbr::Config::sample_policy).
  bool below_min_rtt = false;

  /// Linux-strict validity (what tcp_rate_gen would hand to the CCA).
  bool valid() const {
    return delivered >= 0 && interval.ns() > 0 && !below_min_rtt;
  }
  /// ns-3-loose validity: any sample with timing information.
  bool valid_loose() const { return delivered >= 0 && interval.ns() > 0; }
};

/// Summary of one inbound ACK, passed to the CCA alongside the RateSample.
struct AckEvent {
  TimeNs now;
  SeqNr cumulative_ack = 0;       ///< next expected seq after this ACK
  std::int64_t newly_acked = 0;   ///< segments cumulatively acked by this ACK
  std::int64_t newly_sacked = 0;  ///< segments newly SACKed by this ACK
  bool is_duplicate = false;      ///< no cum-ack advance and no new data acked
};

/// Live sender counters exposed (read-only) to congestion control.
/// Mirrors the Linux tcp_sock fields CCAs consume.
struct SenderState {
  TimeNs now;
  std::int64_t delivered = 0;     ///< total segments delivered (acked+sacked)
  std::int64_t packets_out = 0;   ///< snd_nxt - snd_una (outstanding window)
  std::int64_t sacked_out = 0;    ///< segments SACKed below snd_nxt
  std::int64_t lost_out = 0;      ///< segments marked lost, not yet re-delivered
  std::int64_t retrans_out = 0;   ///< retransmitted segments still outstanding
  std::int64_t total_sent = 0;    ///< all data transmissions incl. retx
  std::int64_t total_retx = 0;    ///< retransmissions only
  DurationNs srtt = DurationNs(-1);
  DurationNs last_rtt = DurationNs(-1);
  DurationNs min_rtt = DurationNs(-1);  ///< lifetime minimum RTT observed
  bool in_recovery = false;       ///< fast-recovery (CA_Recovery analogue)
  bool in_loss = false;           ///< RTO recovery (CA_Loss analogue)
  std::int32_t mss_bytes = 1500;

  /// Linux tcp_packets_in_flight().
  std::int64_t in_flight() const {
    return packets_out - sacked_out - lost_out + retrans_out;
  }
};

}  // namespace ccfuzz::tcp
