// Passive behavioral instrumentation hook for the sender/CCA pair.
//
// A BehaviorSink observes the transport from the outside: the sender feeds
// it one sample per processed ACK plus every congestion-state transition,
// and the sink reads whatever CCA introspection it needs (cwnd, ssthresh,
// pacing rate, CongestionControl::probe_state). Observation must never feed
// back into the simulation — the determinism contract (paper §3.6) requires
// runs with and without a sink attached to be bit-identical, which the
// golden fingerprint tests pin.
//
// The concrete implementation lives in src/coverage/ (BehaviorProbe); the
// interface lives here so tcp/ does not depend upward.
#pragma once

#include "tcp/congestion_control.h"
#include "tcp/types.h"
#include "util/time.h"

namespace ccfuzz::tcp {

/// Read-only observer of transport behavior, attached per sender.
class BehaviorSink {
 public:
  virtual ~BehaviorSink() = default;

  /// One sample per processed ACK, after the CCA's on_ack ran. `rtt_sample`
  /// is this ACK's Karn-filtered RTT measurement, -1 if none.
  virtual void on_ack_sample(const SenderState& st,
                             const CongestionControl& cca,
                             DurationNs rtt_sample) = 0;

  /// Mirrors every CongestionControl::on_congestion_event delivery;
  /// `backoff` is the sender's current RTO exponential-backoff exponent.
  virtual void on_congestion(CongestionEvent ev, int backoff) = 0;
};

}  // namespace ccfuzz::tcp
