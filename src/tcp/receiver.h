// TCP receiver: cumulative ACK generation, SACK blocks, delayed ACKs.
//
// Follows RFC 5681/2018 receiver behaviour with Linux defaults (paper §4):
//  - delayed ACKs: ACK every 2nd full segment, else arm the delack timer;
//  - immediate ACK for out-of-order data and for segments that fill a hole;
//  - immediate ACK for duplicate (already-received) segments — this is what
//    turns a spurious retransmission into an extra dup-ACK at the sender;
//  - up to 3 SACK blocks, most recently changed first (RFC 2018 §4).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"
#include "tcp/types.h"
#include "util/time.h"

namespace ccfuzz::tcp {

/// Receiver endpoint for the CCA flow. Data packets arrive via
/// on_data_packet(); ACKs leave via the supplied send function.
class TcpReceiver {
 public:
  struct Config {
    bool delayed_ack = true;
    /// ACK after this many unacknowledged in-order segments (Linux: 2).
    int ack_every = 2;
    /// Delack timer (ns-3 default 200 ms; Linux adapts in 40–200 ms).
    DurationNs delack_timeout = DurationNs::millis(200);
    /// Max SACK blocks per ACK (3 when timestamps take header room).
    int max_sack_blocks = 3;
    std::int32_t ack_bytes = 40;
    /// Receive buffer in segments (ns-3's default RcvBufSize of 128 KiB is
    /// ~87 MSS segments). In-order data is consumed immediately; only
    /// out-of-order segments occupy the buffer, so a persistent hole
    /// (paper §4.1/§4.3) eventually closes the advertised window and
    /// silences the sender until the hole is repaired.
    std::int64_t rwnd_segments = 87;
    /// Which competing flow this receiver terminates (multi-flow scenarios);
    /// tags emitted ACKs. Flow 0 keeps the single-flow id layout.
    net::FlowIndex flow_index = 0;
  };

  TcpReceiver(sim::Simulator& sim, const Config& cfg,
              std::function<void(net::Packet&&)> send_ack);

  /// Reinitializes the receiver for a fresh run, keeping buffer capacity
  /// (out-of-order ranges, SACK recency list). The simulator must have been
  /// reset; the ACK callback is kept.
  void reset(const Config& cfg);

  /// Handles an arriving data segment (possibly out of order or duplicate).
  void on_data_packet(const net::Packet& p);

  /// Next expected sequence number (left edge of the receive window).
  SeqNr rcv_nxt() const { return rcv_nxt_; }

  /// Segments currently buffered out of order.
  std::int64_t buffered_out_of_order() const;

  /// Advertised window: buffer capacity minus out-of-order occupancy.
  std::int64_t advertised_window() const {
    return std::max<std::int64_t>(cfg_.rwnd_segments - buffered_out_of_order(),
                                  0);
  }

  /// Total in-order segments delivered to the "application".
  std::int64_t segments_received() const { return segments_received_; }
  /// Duplicate segments seen (spurious retransmissions arriving late).
  std::int64_t duplicates_received() const { return duplicates_; }
  /// Total ACK packets emitted.
  std::int64_t acks_sent() const { return acks_sent_; }

 private:
  /// One buffered out-of-order range [start, end).
  struct OooRange {
    SeqNr start;
    SeqNr end;
  };

  void send_ack_now(std::int64_t acked_tx_id);
  void on_delack_timer();
  /// Registers [seq, seq+1) out of order and refreshes the SACK block list.
  void add_out_of_order(SeqNr seq);
  /// Absorbs buffered segments now contiguous with rcv_nxt.
  void absorb_in_order();
  /// Most-recent-first SACK blocks for the ACK header.
  void fill_sacks(net::TcpHeader& h) const;
  /// Index of the range containing or first past `seq`, like map::lower/
  /// upper_bound over starts.
  std::size_t first_range_past(SeqNr seq) const;
  /// Pre-sizes the flat buffers to the receive window (their hard bound), so
  /// loss episodes never touch the allocator on a warm receiver.
  void reserve_buffers();
  void forget_recent(SeqNr start);

  sim::Simulator& sim_;
  Config cfg_;
  std::function<void(net::Packet&&)> send_ack_;
  sim::Timer delack_timer_;

  SeqNr rcv_nxt_ = 0;
  // Out-of-order ranges, sorted by start, non-overlapping and non-adjacent.
  // Flat storage: occupancy is bounded by the receive window (at most
  // ~rwnd/2 ranges), so inserts are small memmoves — the std::map
  // predecessor allocated a node per loss-induced hole, which was the last
  // allocation source in the steady-state fuzzing path.
  std::vector<OooRange> ooo_;
  // SACK block starts, most recently updated first (bounded like ooo_).
  std::vector<SeqNr> recent_blocks_;
  int pending_ack_segments_ = 0;  // in-order segments not yet ACKed
  std::int64_t segments_received_ = 0;
  std::int64_t duplicates_ = 0;
  std::int64_t acks_sent_ = 0;
  std::uint64_t next_ack_id_ = 0;
};

}  // namespace ccfuzz::tcp
