// Structured TCP event log.
//
// Fig 4c of the paper is a timeline of the sender-side events that trigger
// the BBR stall (RTO → spurious retransmissions → late SACKs → premature
// probe-round ends → bandwidth-filter collapse). The sender emits typed
// events here; analysis/timeline.cc renders them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tcp/types.h"
#include "util/time.h"

namespace ccfuzz::tcp {

/// Event kinds recorded by the sender (and BBR, via the sender).
enum class TcpEventType : std::uint8_t {
  kSend,            ///< first transmission of a segment
  kRetransmit,      ///< retransmission (fast retransmit or RTO-driven)
  kSpuriousRetx,    ///< retransmission of a segment later found delivered
  kAck,             ///< cumulative ACK advanced
  kDupAck,          ///< duplicate ACK (possibly carrying SACK)
  kSack,            ///< segment newly SACKed
  kMarkLost,        ///< segment marked lost by SACK scoreboard
  kEnterRecovery,   ///< fast-recovery entered
  kExitRecovery,
  kRto,             ///< retransmission timeout fired
  kExitLoss,
  kProbeRoundEnd,   ///< BBR: probe round ended (rs.prior_delivered clocking)
  kBwSample,        ///< BBR: bandwidth sample accepted into the max-filter
  kBwFilterDrop,    ///< BBR: filter output decreased (good samples aged out)
  kProbeRttEnter,   ///< BBR: entered ProbeRTT
  kProbeRttExit,
};

/// Human-readable name for an event type.
const char* to_string(TcpEventType t);

/// One timeline entry. `seq`/`value` meaning depends on the type (segment
/// seq for send/sack events; rate in pps for bw events; etc.).
struct TcpEvent {
  TimeNs time;
  TcpEventType type;
  SeqNr seq = -1;
  double value = 0.0;
  std::string to_string() const;
};

/// Append-only event log. Disabled by default in fuzzing runs (allocation
/// free when disabled) and enabled for analysis / figure generation.
class TcpEventLog {
 public:
  explicit TcpEventLog(bool enabled = false) : enabled_(enabled) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Empties the log for a fresh run, keeping the event vector's capacity.
  void reset(bool enabled) {
    enabled_ = enabled;
    events_.clear();
    for (auto& c : counts_) c = 0;
  }

  void emit(TimeNs t, TcpEventType type, SeqNr seq = -1, double value = 0.0) {
    if (!enabled_) {
      counts_[static_cast<std::size_t>(type)]++;
      return;
    }
    counts_[static_cast<std::size_t>(type)]++;
    events_.push_back({t, type, seq, value});
  }

  const std::vector<TcpEvent>& events() const { return events_; }

  /// Total occurrences of `type` (counted even when detailed logging is off).
  std::int64_t count(TcpEventType type) const {
    return counts_[static_cast<std::size_t>(type)];
  }

 private:
  bool enabled_;
  std::vector<TcpEvent> events_;
  std::int64_t counts_[16]{};
};

}  // namespace ccfuzz::tcp
