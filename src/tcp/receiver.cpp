#include "tcp/receiver.h"

#include <algorithm>
#include <cassert>

namespace ccfuzz::tcp {

TcpReceiver::TcpReceiver(sim::Simulator& sim, const Config& cfg,
                         std::function<void(net::Packet&&)> send_ack)
    : sim_(sim),
      cfg_(cfg),
      send_ack_(std::move(send_ack)),
      delack_timer_(sim, [this] { on_delack_timer(); }) {}

void TcpReceiver::on_data_packet(const net::Packet& p) {
  const SeqNr seq = p.tcp.seq;
  assert(seq >= 0 && "data packet without sequence number");

  if (seq < rcv_nxt_) {
    // Old/duplicate segment (e.g. a spurious retransmission arriving after
    // the original). RFC 5681: ACK immediately so the sender can resync.
    ++duplicates_;
    send_ack_now(p.tcp.tx_id);
    return;
  }

  if (seq == rcv_nxt_) {
    // RFC 5681: an immediate ACK when the segment fills all or part of a
    // gap. This covers the post-RTO head retransmission whose cumulative
    // ACK must not sit behind the delack timer.
    const bool filled_gap = !ooo_.empty();
    ++rcv_nxt_;
    ++segments_received_;
    absorb_in_order();
    if (filled_gap) {
      pending_ack_segments_ = 0;
      send_ack_now(p.tcp.tx_id);
      return;
    }
    ++pending_ack_segments_;
    if (!cfg_.delayed_ack || pending_ack_segments_ >= cfg_.ack_every) {
      pending_ack_segments_ = 0;
      send_ack_now(p.tcp.tx_id);
    } else if (!delack_timer_.pending()) {
      delack_timer_.arm(cfg_.delack_timeout);
    }
    return;
  }

  // Out of order: duplicate delivery of a buffered seq also lands here.
  const bool already_buffered = [&] {
    auto it = ooo_.upper_bound(seq);
    if (it != ooo_.begin()) {
      --it;
      if (seq >= it->first && seq < it->second) return true;
    }
    return false;
  }();
  if (already_buffered) {
    ++duplicates_;
  } else {
    add_out_of_order(seq);
  }
  pending_ack_segments_ = 0;
  send_ack_now(p.tcp.tx_id);
}

void TcpReceiver::absorb_in_order() {
  for (auto it = ooo_.begin(); it != ooo_.end() && it->first <= rcv_nxt_;) {
    if (it->second > rcv_nxt_) {
      segments_received_ += it->second - rcv_nxt_;
      rcv_nxt_ = it->second;
    }
    const SeqNr start = it->first;
    it = ooo_.erase(it);
    std::erase(recent_blocks_, start);
  }
}

void TcpReceiver::add_out_of_order(SeqNr seq) {
  // Insert [seq, seq+1), merging with neighbours.
  SeqNr start = seq;
  SeqNr end = seq + 1;
  auto it = ooo_.upper_bound(seq);
  // Merge with predecessor block ending at seq.
  if (it != ooo_.begin()) {
    auto prev = std::prev(it);
    if (prev->second == seq) {
      start = prev->first;
      std::erase(recent_blocks_, prev->first);
      ooo_.erase(prev);
    }
  }
  // Merge with successor block starting at seq+1.
  it = ooo_.find(end);
  if (it != ooo_.end()) {
    end = it->second;
    std::erase(recent_blocks_, it->first);
    ooo_.erase(it);
  }
  ooo_[start] = end;
  // Most recently changed block goes first (RFC 2018 §4).
  std::erase(recent_blocks_, start);
  recent_blocks_.push_front(start);
}

void TcpReceiver::fill_sacks(net::TcpHeader& h) const {
  h.n_sacks = 0;
  for (const SeqNr start : recent_blocks_) {
    if (h.n_sacks >= cfg_.max_sack_blocks) break;
    auto it = ooo_.find(start);
    if (it == ooo_.end()) continue;
    h.sacks[h.n_sacks++] = net::SackBlock{it->first, it->second};
  }
}

std::int64_t TcpReceiver::buffered_out_of_order() const {
  std::int64_t n = 0;
  for (const auto& [start, end] : ooo_) n += end - start;
  return n;
}

void TcpReceiver::send_ack_now(std::int64_t acked_tx_id) {
  delack_timer_.cancel();
  pending_ack_segments_ = 0;
  net::Packet ack;
  ack.id = 0xA000000000000000ULL +
           (static_cast<std::uint64_t>(cfg_.flow_index) << 48) + next_ack_id_++;
  ack.flow = net::FlowId::kAck;
  ack.flow_index = cfg_.flow_index;
  ack.size_bytes = cfg_.ack_bytes;
  ack.created_at = sim_.now();
  ack.tcp.ack = rcv_nxt_;
  ack.tcp.acked_tx_id = acked_tx_id;
  ack.tcp.wnd = advertised_window();
  fill_sacks(ack.tcp);
  ++acks_sent_;
  send_ack_(std::move(ack));
}

void TcpReceiver::on_delack_timer() {
  if (pending_ack_segments_ > 0) send_ack_now(-1);
}

}  // namespace ccfuzz::tcp
