#include "tcp/receiver.h"

#include <cassert>

namespace ccfuzz::tcp {

TcpReceiver::TcpReceiver(sim::Simulator& sim, const Config& cfg,
                         std::function<void(net::Packet&&)> send_ack)
    : sim_(sim),
      cfg_(cfg),
      send_ack_(std::move(send_ack)),
      delack_timer_(sim, [this] { on_delack_timer(); }) {
  reserve_buffers();
}

void TcpReceiver::reset(const Config& cfg) {
  cfg_ = cfg;
  // A pre-reset timer id: cancelling is a guaranteed no-op.
  delack_timer_.cancel();
  rcv_nxt_ = 0;
  ooo_.clear();
  recent_blocks_.clear();
  pending_ack_segments_ = 0;
  segments_received_ = 0;
  duplicates_ = 0;
  acks_sent_ = 0;
  next_ack_id_ = 0;
  reserve_buffers();
}

void TcpReceiver::reserve_buffers() {
  // Out-of-order occupancy cannot exceed the advertised buffer, and distinct
  // ranges need a gap between them, so rwnd/2 + 1 is the hard bound; reserve
  // a little over it so warm loss recovery never allocates.
  const auto bound =
      static_cast<std::size_t>(std::max<std::int64_t>(cfg_.rwnd_segments, 0)) /
          2 +
      2;
  ooo_.reserve(bound);
  recent_blocks_.reserve(bound);
}

std::size_t TcpReceiver::first_range_past(SeqNr seq) const {
  // Smallest index whose range starts after `seq` (map::upper_bound).
  std::size_t lo = 0;
  std::size_t hi = ooo_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (ooo_[mid].start <= seq) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void TcpReceiver::forget_recent(SeqNr start) {
  std::erase(recent_blocks_, start);
}

void TcpReceiver::on_data_packet(const net::Packet& p) {
  const SeqNr seq = p.tcp.seq;
  assert(seq >= 0 && "data packet without sequence number");

  if (seq < rcv_nxt_) {
    // Old/duplicate segment (e.g. a spurious retransmission arriving after
    // the original). RFC 5681: ACK immediately so the sender can resync.
    ++duplicates_;
    send_ack_now(p.tcp.tx_id);
    return;
  }

  if (seq == rcv_nxt_) {
    // RFC 5681: an immediate ACK when the segment fills all or part of a
    // gap. This covers the post-RTO head retransmission whose cumulative
    // ACK must not sit behind the delack timer.
    const bool filled_gap = !ooo_.empty();
    ++rcv_nxt_;
    ++segments_received_;
    absorb_in_order();
    if (filled_gap) {
      pending_ack_segments_ = 0;
      send_ack_now(p.tcp.tx_id);
      return;
    }
    ++pending_ack_segments_;
    if (!cfg_.delayed_ack || pending_ack_segments_ >= cfg_.ack_every) {
      pending_ack_segments_ = 0;
      send_ack_now(p.tcp.tx_id);
    } else if (!delack_timer_.pending()) {
      // 200 ms out: parks in the event core's far band and is usually
      // cancelled by the next full segment long before migrating.
      delack_timer_.arm(cfg_.delack_timeout);
    }
    return;
  }

  // Out of order: duplicate delivery of a buffered seq also lands here.
  const std::size_t past = first_range_past(seq);
  const bool already_buffered =
      past > 0 && seq >= ooo_[past - 1].start && seq < ooo_[past - 1].end;
  if (already_buffered) {
    ++duplicates_;
  } else {
    add_out_of_order(seq);
  }
  pending_ack_segments_ = 0;
  send_ack_now(p.tcp.tx_id);
}

void TcpReceiver::absorb_in_order() {
  // Ranges are sorted: everything absorbable sits at the front.
  std::size_t n = 0;
  while (n < ooo_.size() && ooo_[n].start <= rcv_nxt_) {
    if (ooo_[n].end > rcv_nxt_) {
      segments_received_ += ooo_[n].end - rcv_nxt_;
      rcv_nxt_ = ooo_[n].end;
    }
    forget_recent(ooo_[n].start);
    ++n;
  }
  if (n > 0) {
    ooo_.erase(ooo_.begin(), ooo_.begin() + static_cast<std::ptrdiff_t>(n));
  }
}

void TcpReceiver::add_out_of_order(SeqNr seq) {
  // Insert [seq, seq+1), merging with neighbours.
  SeqNr start = seq;
  SeqNr end = seq + 1;
  std::size_t pos = first_range_past(seq);
  // Merge with predecessor block ending at seq.
  if (pos > 0 && ooo_[pos - 1].end == seq) {
    start = ooo_[pos - 1].start;
    forget_recent(ooo_[pos - 1].start);
    ooo_.erase(ooo_.begin() + static_cast<std::ptrdiff_t>(pos - 1));
    --pos;
  }
  // Merge with successor block starting at seq+1.
  if (pos < ooo_.size() && ooo_[pos].start == end) {
    end = ooo_[pos].end;
    forget_recent(ooo_[pos].start);
    ooo_.erase(ooo_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  ooo_.insert(ooo_.begin() + static_cast<std::ptrdiff_t>(pos),
              OooRange{start, end});
  // Most recently changed block goes first (RFC 2018 §4).
  forget_recent(start);
  recent_blocks_.insert(recent_blocks_.begin(), start);
}

void TcpReceiver::fill_sacks(net::TcpHeader& h) const {
  h.n_sacks = 0;
  for (const SeqNr start : recent_blocks_) {
    if (h.n_sacks >= cfg_.max_sack_blocks) break;
    const std::size_t past = first_range_past(start);
    if (past == 0 || ooo_[past - 1].start != start) continue;
    h.sacks[h.n_sacks++] = net::SackBlock{start, ooo_[past - 1].end};
  }
}

std::int64_t TcpReceiver::buffered_out_of_order() const {
  std::int64_t n = 0;
  for (const OooRange& r : ooo_) n += r.end - r.start;
  return n;
}

void TcpReceiver::send_ack_now(std::int64_t acked_tx_id) {
  delack_timer_.cancel();
  pending_ack_segments_ = 0;
  net::Packet ack;
  ack.id = 0xA000000000000000ULL +
           (static_cast<std::uint64_t>(cfg_.flow_index) << 48) + next_ack_id_++;
  ack.flow = net::FlowId::kAck;
  ack.flow_index = cfg_.flow_index;
  ack.size_bytes = cfg_.ack_bytes;
  ack.created_at = sim_.now();
  ack.tcp.ack = rcv_nxt_;
  ack.tcp.acked_tx_id = acked_tx_id;
  ack.tcp.wnd = advertised_window();
  fill_sacks(ack.tcp);
  ++acks_sent_;
  send_ack_(std::move(ack));
}

void TcpReceiver::on_delack_timer() {
  if (pending_ack_segments_ > 0) send_ack_now(-1);
}

}  // namespace ccfuzz::tcp
