// The distributed-campaign supervisor: spawn, watch, restart — carefully.
//
// The supervisor fork/execs one `ccfuzz worker` process per nonempty shard,
// multiplexes their shard-tagged JSONL stdout streams into one aggregate
// feed (`<root>/progress.jsonl` — whole lines only, so the feed is valid
// JSONL even while workers race), and watches for worker death: a nonzero
// exit, a termination signal, or a missed heartbeat (no output for longer
// than the timeout → SIGKILL). A dead worker is restarted with the same
// argv; because workers checkpoint every generation into their own shard
// directory (PR 7's crash-safe campaign machinery, reused verbatim), the
// restart resumes where the victim died and the finished shard tree — and
// therefore the merged report — is bit-identical to an undisturbed run.
//
// Self-hardening (PR 9):
//   * Restarts are paced by RestartPolicy — exponential backoff with
//     deterministic jitter, budgeted per sliding window — and scheduled as
//     deadlines, so the supervisor keeps draining healthy workers while a
//     crashing one waits out its backoff.
//   * A worker that dies repeatedly at the *same cell* (tracked from the
//     JSONL stream) has that cell quarantined: a marker lands in
//     `<root>/quarantine/cells/`, the worker restarts with `--skip-cells`,
//     and the rest of the campaign completes. The merge step skips
//     quarantined cells instead of failing.
//   * Disk space is preflighted before spawning and re-checked while
//     running; low space triggers the same graceful drain as SIGTERM
//     (workers checkpoint and exit, rerun resumes).
//   * A stale `worker.pid` left by a dead supervisor is triaged (gone pid /
//     recycled pid → reclaimed with a warning; a live sibling worker →
//     refuse to double-run the campaign).
//
// Shutdown is cooperative: the supervisor's own SIGINT/SIGTERM (via the
// campaign stop flag) is forwarded to every live worker once, workers drain
// gracefully (exit kWorkerInterruptedExit, state checkpointed), pending
// backoff respawns are cancelled, and rerunning the supervisor resumes the
// campaign.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "dist/restart_policy.h"
#include "dist/shard_plan.h"

namespace ccfuzz::dist {

struct SupervisorOptions {
  /// Path of the ccfuzz binary to exec workers from (usually
  /// /proc/self/exe, resolved by the CLI).
  std::string binary;
  /// Flags reproducing the campaign matrix, appended to every worker's argv
  /// after `worker --shard k/N --output <root>` (the supervisor does not
  /// understand them; the CLI reserializes its own).
  std::vector<std::string> worker_flags;
  /// Campaign root: shard trees under `<root>/shards/<k>/`, the aggregate
  /// feed at `<root>/progress.jsonl`, the plan at `<root>/shard_plan.json`.
  std::string root;
  /// Restart budget per shard *per sliding window* (see restart_window_s);
  /// a worker dying more often marks the run failed. A long campaign may
  /// crash occasionally forever; a crash loop exhausts the window.
  int max_restarts = 3;
  /// Length of the sliding restart-budget window.
  double restart_window_s = 300.0;
  /// Backoff before the 1st restart; doubles per consecutive restart.
  double restart_base_delay_s = 0.25;
  /// Backoff ceiling.
  double restart_max_delay_s = 30.0;
  /// Jitter fraction on top of the backoff (deterministic per shard).
  double restart_jitter = 0.25;
  /// Seconds of worker silence before it is presumed hung and SIGKILLed
  /// (restart path). 0 disables the watchdog.
  double heartbeat_timeout_s = 0.0;
  /// Deaths at the same cell before that cell is quarantined. <= 0 disables
  /// quarantine.
  int poison_threshold = 2;
  /// Minimum free bytes on the campaign filesystem: preflighted before
  /// spawning (refuse to start) and re-checked while running (graceful
  /// drain). 0 disables both checks.
  std::uint64_t min_free_bytes = std::uint64_t{16} << 20;
  /// Monotonic seconds for every scheduling decision (backoff deadlines,
  /// budget windows, heartbeats). Null uses steady_clock; tests inject a
  /// fake clock to observe backoff timing without waiting it out.
  std::function<double()> clock;
  /// Human progress notes (worker starts/exits/restarts); null for stderr.
  std::FILE* log = nullptr;
};

/// Runs the campaign's workers to completion. Returns 0 when every shard
/// completed (or the run was gracefully interrupted — check interrupted()),
/// 1 when any shard exhausted its restart budget, could not be spawned, or
/// the preflight refused to start.
class Supervisor {
 public:
  Supervisor(SupervisorOptions opt, ShardPlan plan);
  ~Supervisor();  // out-of-line: Worker is incomplete here

  int run();

  /// True when run() stopped on a shutdown request (signal or low disk)
  /// instead of completing; shard state is checkpointed and a rerun
  /// resumes it.
  bool interrupted() const { return interrupted_; }

 private:
  struct Worker;

  bool spawn(Worker& w, int restart);
  /// Moves available bytes from the worker's pipe into its line buffer,
  /// flushing whole lines to the feed (and tracking the worker's current
  /// cell for poison attribution). False on EOF (worker gone).
  bool drain(Worker& w);
  void handle_exit(Worker& w, int wait_status);
  void quarantine_cell(Worker& w, const std::string& cell);
  /// Triage a pre-existing worker.pid before claiming the shard. False when
  /// a live sibling worker owns it (refuse to double-run).
  bool reclaim_pid_file(const Worker& w);
  void emit_event(const std::string& json);
  std::FILE* log_stream() const;
  double now_s() const;

  SupervisorOptions opt_;
  ShardPlan plan_;
  std::vector<Worker> workers_;
  std::FILE* feed_ = nullptr;  ///< owned while run() is live
  bool interrupted_ = false;
};

}  // namespace ccfuzz::dist
