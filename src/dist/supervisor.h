// The distributed-campaign supervisor: spawn, watch, restart.
//
// The supervisor fork/execs one `ccfuzz worker` process per nonempty shard,
// multiplexes their shard-tagged JSONL stdout streams into one aggregate
// feed (`<root>/progress.jsonl` — whole lines only, so the feed is valid
// JSONL even while workers race), and watches for worker death: a nonzero
// exit, a termination signal, or a missed heartbeat (no output for longer
// than the timeout → SIGKILL). A dead worker is restarted with the same
// argv; because workers checkpoint every generation into their own shard
// directory (PR 7's crash-safe campaign machinery, reused verbatim), the
// restart resumes where the victim died and the finished shard tree — and
// therefore the merged report — is bit-identical to an undisturbed run.
//
// Shutdown is cooperative: the supervisor's own SIGINT/SIGTERM (via the
// campaign stop flag) is forwarded to every live worker once, workers drain
// gracefully (exit kWorkerInterruptedExit, state checkpointed), and no
// restarts are issued — rerunning the supervisor resumes the campaign.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dist/shard_plan.h"

namespace ccfuzz::dist {

struct SupervisorOptions {
  /// Path of the ccfuzz binary to exec workers from (usually
  /// /proc/self/exe, resolved by the CLI).
  std::string binary;
  /// Flags reproducing the campaign matrix, appended to every worker's argv
  /// after `worker --shard k/N --output <root>` (the supervisor does not
  /// understand them; the CLI reserializes its own).
  std::vector<std::string> worker_flags;
  /// Campaign root: shard trees under `<root>/shards/<k>/`, the aggregate
  /// feed at `<root>/progress.jsonl`, the plan at `<root>/shard_plan.json`.
  std::string root;
  /// Restart budget per shard; a worker dying more than this many times
  /// marks the run failed.
  int max_restarts = 3;
  /// Seconds of worker silence before it is presumed hung and SIGKILLed
  /// (restart path). 0 disables the watchdog.
  double heartbeat_timeout_s = 0.0;
  /// Human progress notes (worker starts/exits/restarts); null for stderr.
  std::FILE* log = nullptr;
};

/// Runs the campaign's workers to completion. Returns 0 when every shard
/// completed (or the run was gracefully interrupted — check interrupted()),
/// 1 when any shard exhausted its restart budget or could not be spawned.
class Supervisor {
 public:
  Supervisor(SupervisorOptions opt, ShardPlan plan);
  ~Supervisor();  // out-of-line: Worker is incomplete here

  int run();

  /// True when run() stopped on a shutdown request instead of completing;
  /// shard state is checkpointed and a rerun resumes it.
  bool interrupted() const { return interrupted_; }

 private:
  struct Worker;

  bool spawn(Worker& w, int restart);
  /// Moves available bytes from the worker's pipe into its line buffer,
  /// flushing whole lines to the feed. False on EOF (worker gone).
  bool drain(Worker& w);
  void handle_exit(Worker& w, int wait_status);
  void emit_event(const std::string& json);
  std::FILE* log_stream() const;

  SupervisorOptions opt_;
  ShardPlan plan_;
  std::vector<Worker> workers_;
  std::FILE* feed_ = nullptr;  ///< owned while run() is live
  bool interrupted_ = false;
};

}  // namespace ccfuzz::dist
