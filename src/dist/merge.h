// Folding shard report trees back into one campaign report.
//
// A distributed campaign leaves `<root>/shards/<k>/` report trees, one per
// worker, each written by the ordinary single-process report writer
// (campaign::write_report). Because every cell is wholly owned by one shard
// and a cell's GA is a pure function of its own config and seed, the
// per-cell artifacts (history.csv, winner traces, archive.txt) are already
// byte-identical to what a single-process run would have written — merging
// is reassembly, not recomputation. Only the cross-cell summaries span
// shards: merge_reports rebuilds `summary.csv` and `summary.json` by
// splicing each shard's rows/blocks back into global cell order, so the
// merged files are byte-identical to the single-process campaign's (the
// property the merge-determinism test pins).
//
// On top of the per-cell copies, the merge unions every cell's MAP-Elites
// archive (fuzz::EliteArchive::merge_from) into `<out>/archive_merged.txt` —
// the campaign-wide behavior map. A corrupt per-cell archive degrades to a
// warning; corrupt summaries are typed Errors (the caller decides whether a
// partial merge is acceptable).
#pragma once

#include <cstdint>
#include <string>

#include "dist/shard_plan.h"
#include "util/error.h"

namespace ccfuzz::dist {

struct MergeStats {
  std::size_t cells = 0;        ///< cells reassembled into the summary
  std::size_t shards_read = 0;  ///< shards that owned at least one cell
  /// True when any shard's summary was written by an interrupted campaign —
  /// the merged report is partial; rerun the supervisor to finish.
  bool interrupted = false;
  std::size_t archives_merged = 0;  ///< per-cell archives folded into the union
  std::size_t archive_cells = 0;    ///< merged archive occupancy
  std::uint32_t coverage_bits = 0;  ///< merged archive union-bitmap bits
  /// Planned cells absent from their shard's report but covered by a
  /// quarantine marker (`<root>/quarantine/cells/<cell>.cell`) — skipped
  /// instead of failing the merge. The merged report omits them.
  std::size_t cells_quarantined = 0;
  /// NaN/inf-scoring genomes quarantined across all shards (sum of the
  /// shards' summary.json "quarantined" counts; the genome files themselves
  /// stay under each shard's quarantine/ directory).
  std::size_t genomes_quarantined = 0;
};

/// Merges `<shards_root>/shards/<k>/` trees into a report under `out_dir`
/// (summary.csv, summary.json, per-cell directories, archive_merged.txt).
/// `out_dir` may equal `shards_root` — the usual layout, putting the merged
/// report at the campaign root. Error codes: kIo (missing/unreadable shard
/// files), kParse (malformed summary content), kMismatch (a planned cell
/// missing from its shard's report), kCorrupt (shard tree missing a cell's
/// directory).
Result<MergeStats> merge_reports(const std::string& shards_root,
                                 const ShardPlan& plan,
                                 const std::string& out_dir);

/// The shard's report directory: `<root>/shards/<k>`.
std::string shard_dir(const std::string& root, std::uint32_t shard);

}  // namespace ccfuzz::dist
