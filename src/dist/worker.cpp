#include "dist/worker.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "campaign/report.h"
#include "dist/merge.h"
#include "dist/shard_plan.h"
#include "faultinject/fault_plan.h"
#include "util/logging.h"

namespace ccfuzz::dist {
namespace {

/// Emits an explicit `heartbeat` line per generation event. The JSONL
/// generation events already prove liveness, but a heartbeat is cheap and
/// keeps the liveness contract explicit rather than an artifact of the
/// progress format.
class HeartbeatObserver final : public campaign::CampaignObserver {
 public:
  HeartbeatObserver(std::ostream& out, int shard) : out_(out), shard_(shard) {}

  void on_generation(const campaign::CellConfig& cell,
                     const fuzz::GenStats& gs) override {
    out_ << "{\"event\":\"heartbeat\",\"shard\":" << shard_ << ",\"cell\":\""
         << campaign::json_escape(cell.name)
         << "\",\"generation\":" << gs.generation << "}\n";
    out_.flush();
  }

 private:
  std::ostream& out_;
  int shard_;
};

/// Slows the lockstep loop down (supervisor-restart tests need a window to
/// kill a worker mid-campaign).
class ThrottleObserver final : public campaign::CampaignObserver {
 public:
  explicit ThrottleObserver(int ms) : ms_(ms) {}

  void on_generation(const campaign::CellConfig&,
                     const fuzz::GenStats&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
  }

 private:
  int ms_;
};

/// Consults the armed FaultPlan at generation boundaries — the two faults a
/// worker can suffer as a whole process (hang; die while a named cell is
/// active). Only registered while a plan is armed, so fault-free campaigns
/// never pay the dispatch.
class FaultObserver final : public campaign::CampaignObserver {
 public:
  void on_generation(const campaign::CellConfig& cell,
                     const fuzz::GenStats&) override {
    using faultinject::FaultSite;
    if (faultinject::should_fire(FaultSite::kWorkerHang)) {
      faultinject::hang_now();
    }
    if (faultinject::should_fire(FaultSite::kCellCrash, cell.name)) {
      faultinject::crash_now(FaultSite::kCellCrash);
    }
  }
};

}  // namespace

int run_worker(const campaign::CampaignConfig& full,
               const WorkerOptions& opt) {
  if (opt.num_shards < 1 || opt.shard < 0 || opt.shard >= opt.num_shards) {
    throw std::invalid_argument("worker: shard " + std::to_string(opt.shard) +
                                " out of range for " +
                                std::to_string(opt.num_shards) + " shards");
  }
  const std::string dir = shard_dir(opt.root, static_cast<std::uint32_t>(opt.shard));
  std::filesystem::create_directories(dir);

  // Every worker expands the same full matrix and keeps its own cells, so
  // assignment needs no coordination and survives workers joining in any
  // order. add_cell() preserves the expanded names — the shard plan and the
  // merged report key on them.
  campaign::CampaignConfig mine;
  mine.parallel(full.parallel())
      .output_dir(dir)
      .resume_dir(dir)
      .checkpoint_every(opt.checkpoint_every);
  std::size_t owned = 0;
  for (auto& cell : full.cells()) {
    if (ShardPlan::shard_of(cell.name, opt.num_shards) !=
        static_cast<std::uint32_t>(opt.shard)) {
      continue;
    }
    if (std::find(opt.skip_cells.begin(), opt.skip_cells.end(), cell.name) !=
        opt.skip_cells.end()) {
      CCFUZZ_LOG_WARN("worker: skipping quarantined cell '%s'",
                      cell.name.c_str());
      continue;
    }
    // The full config carries no resume_dir; this worker's cells resume from
    // its own shard directory (where its write_report puts archives).
    mine.add_cell(std::move(cell));
    ++owned;
  }

  campaign::JsonlObserver jsonl(std::cout);
  jsonl.set_shard(opt.shard);

  if (owned == 0) {
    // An empty shard is a complete shard: write the empty report tree so the
    // merge step finds a well-formed summary, and announce it on the feed.
    campaign::CampaignReport empty;
    campaign::write_report(empty, dir);
    if (opt.jsonl_stdout) {
      jsonl.on_campaign_begin({});
      jsonl.on_campaign_end(empty);
    }
    return 0;
  }

  campaign::Campaign campaign(mine);
  HeartbeatObserver heartbeat(std::cout, opt.shard);
  ThrottleObserver throttle(opt.throttle_ms);
  FaultObserver faults;
  if (opt.jsonl_stdout) {
    campaign.add_observer(&jsonl);
    campaign.add_observer(&heartbeat);
  }
  if (opt.throttle_ms > 0) campaign.add_observer(&throttle);
  // Last: a cell-crash must land *after* the cell's progress lines reached
  // stdout, so the supervisor attributes the death to the right cell.
  if (faultinject::active() != nullptr) campaign.add_observer(&faults);

  const campaign::CampaignReport& report = campaign.run();
  return report.interrupted ? kWorkerInterruptedExit : 0;
}

}  // namespace ccfuzz::dist
