#include "dist/shard_plan.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "campaign/report.h"
#include "trace/hash.h"
#include "util/fs.h"

namespace ccfuzz::dist {
namespace {

/// Undoes campaign::json_escape for the escapes it emits (quote, backslash,
/// \n, \t, \u00XX control characters). Returns false on a malformed escape.
bool json_unescape(std::string_view in, std::string& out) {
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '\\') {
      out += in[i];
      continue;
    }
    if (++i >= in.size()) return false;
    switch (in[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= in.size()) return false;
        unsigned v = 0;
        for (int k = 1; k <= 4; ++k) {
          const char c = in[i + k];
          v <<= 4;
          if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
          else return false;
        }
        if (v > 0xFF) return false;  // json_escape only emits control bytes
        out += static_cast<char>(v);
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return true;
}

}  // namespace

std::uint32_t ShardPlan::shard_of(std::string_view cell_name, int num_shards) {
  std::uint64_t h = trace::kFnvOffset;
  for (char c : cell_name) {
    h ^= static_cast<unsigned char>(c);
    h *= trace::kFnvPrime;
  }
  // FNV-1a's low bit is linear in the input bytes (the prime is odd, so the
  // multiply preserves parity) — taken mod a small power of two it collapses
  // whole families of names onto one shard. Finalize with a full-width mixer
  // (murmur3 fmix64) so every hash bit reaches the modulus.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return static_cast<std::uint32_t>(h % static_cast<std::uint64_t>(num_shards));
}

ShardPlan ShardPlan::build(const std::vector<campaign::CellConfig>& cells,
                           int num_shards) {
  if (num_shards < 1) {
    throw std::invalid_argument("ShardPlan: num_shards must be >= 1");
  }
  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.entries.reserve(cells.size());
  for (const auto& cell : cells) {
    plan.entries.push_back({cell.name, shard_of(cell.name, num_shards)});
  }
  return plan;
}

std::vector<std::size_t> ShardPlan::cells_of(std::uint32_t shard) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].shard == shard) out.push_back(i);
  }
  return out;
}

std::size_t ShardPlan::cell_count(std::uint32_t shard) const {
  std::size_t n = 0;
  for (const auto& e : entries) {
    if (e.shard == shard) ++n;
  }
  return n;
}

std::string ShardPlan::to_json() const {
  std::ostringstream os;
  os << "{\n  \"num_shards\": " << num_shards << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    os << "    {\"cell\": \"" << campaign::json_escape(entries[i].cell)
       << "\", \"shard\": " << entries[i].shard << "}"
       << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

Error ShardPlan::save_file(const std::string& path) const {
  return write_file_atomic(path, to_json());
}

Result<ShardPlan> ShardPlan::try_load(std::istream& is) {
  ShardPlan plan;
  plan.num_shards = 0;
  std::string line;
  const auto next = [&](std::string& out) {
    while (std::getline(is, out)) {
      // Trim surrounding whitespace; the writer indents with spaces.
      const auto b = out.find_first_not_of(" \t\r");
      if (b == std::string::npos) continue;
      out = out.substr(b, out.find_last_not_of(" \t\r") - b + 1);
      return true;
    }
    return false;
  };

  if (!next(line)) return Error::truncated("shard plan: empty file");
  if (line != "{") return Error::parse("shard plan: expected '{', got: " + line);
  if (!next(line)) return Error::truncated("shard plan: missing num_shards");
  {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag >> plan.num_shards;
    if (tag != "\"num_shards\":" || ls.fail() || plan.num_shards < 1) {
      return Error::parse("shard plan: bad num_shards line: " + line);
    }
  }
  if (!next(line)) return Error::truncated("shard plan: missing cells array");
  if (line != "\"cells\": [") {
    return Error::parse("shard plan: expected '\"cells\": [', got: " + line);
  }
  bool closed = false;
  while (next(line)) {
    if (line == "]") {
      closed = true;
      break;
    }
    // {"cell": "<escaped>", "shard": k} with an optional trailing comma.
    constexpr std::string_view kPrefix = "{\"cell\": \"";
    if (line.rfind(kPrefix, 0) != 0) {
      return Error::parse("shard plan: bad cell entry: " + line);
    }
    // The name ends at the first quote not preceded by a backslash.
    std::size_t end = std::string::npos;
    for (std::size_t i = kPrefix.size(); i < line.size(); ++i) {
      if (line[i] == '\\') {
        ++i;
      } else if (line[i] == '"') {
        end = i;
        break;
      }
    }
    if (end == std::string::npos) {
      return Error::parse("shard plan: unterminated cell name: " + line);
    }
    Entry e;
    if (!json_unescape(
            std::string_view(line).substr(kPrefix.size(), end - kPrefix.size()),
            e.cell)) {
      return Error::parse("shard plan: bad escape in cell name: " + line);
    }
    std::istringstream rest(line.substr(end + 1));
    std::string comma, tag;
    long shard = -1;
    rest >> comma >> tag >> shard;
    if (comma != "," || tag != "\"shard\":" || rest.fail()) {
      return Error::parse("shard plan: bad shard field: " + line);
    }
    if (shard < 0 || shard >= plan.num_shards) {
      return Error::corrupt("shard plan: shard " + std::to_string(shard) +
                            " out of range for " +
                            std::to_string(plan.num_shards) + " shards");
    }
    for (const auto& prev : plan.entries) {
      if (prev.cell == e.cell) {
        return Error::corrupt("shard plan: duplicate cell: " + e.cell);
      }
    }
    e.shard = static_cast<std::uint32_t>(shard);
    plan.entries.push_back(std::move(e));
  }
  if (!closed) return Error::truncated("shard plan: unterminated cells array");
  if (!next(line) || line != "}") {
    return Error::truncated("shard plan: missing closing '}'");
  }
  return plan;
}

Result<ShardPlan> ShardPlan::try_load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Error::io("cannot open shard plan: " + path);
  return try_load(f);
}

}  // namespace ccfuzz::dist
