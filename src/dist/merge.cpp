#include "dist/merge.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>
#include <vector>

#include "campaign/report.h"
#include "fuzz/elite_archive.h"
#include "util/fs.h"
#include "util/logging.h"

namespace ccfuzz::dist {
namespace {

namespace fs = std::filesystem;

Result<std::string> slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Error::io("cannot open " + path.string());
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// One shard's parsed summary pair: cells addressable by name, with the raw
/// text preserved so reassembly is byte-exact.
struct ShardSummary {
  bool interrupted = false;
  /// Quarantined-genome count from the shard's summary header (0 for
  /// summaries written before the field existed).
  std::size_t quarantined = 0;
  /// Cell name → its summary.csv data row (newline included).
  std::map<std::string, std::string, std::less<>> csv_rows;
  /// Cell name (escaped form) → its summary.json cell block, normalized to
  /// end in "    }\n" (no trailing comma).
  std::map<std::string, std::string, std::less<>> json_blocks;
};

/// Splits a shard's summary.csv into rows keyed by their first field. The
/// first field of each row is matched against csv_field(name) later, so the
/// raw row text is kept verbatim.
Error parse_summary_csv(const std::string& body, std::uint32_t shard,
                        ShardSummary& out) {
  std::istringstream is(body);
  std::string line;
  if (!std::getline(is, line)) {
    return Error::truncated("shard " + std::to_string(shard) +
                            ": empty summary.csv");
  }
  if (line + "\n" != campaign::summary_csv_header()) {
    return Error::parse("shard " + std::to_string(shard) +
                        ": summary.csv header mismatch: " + line);
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    // First field: up to the first comma, or the full quoted field.
    std::string first;
    if (!line.empty() && line[0] == '"') {
      std::size_t i = 1;
      for (; i < line.size(); ++i) {
        if (line[i] != '"') continue;
        if (i + 1 < line.size() && line[i + 1] == '"') {
          ++i;  // escaped quote
          continue;
        }
        break;
      }
      if (i >= line.size()) {
        return Error::parse("shard " + std::to_string(shard) +
                            ": unterminated quoted cell in summary.csv: " +
                            line);
      }
      first = line.substr(0, i + 1);
    } else {
      first = line.substr(0, line.find(','));
    }
    out.csv_rows[first] = line + "\n";
  }
  return Error::success();
}

/// Splits a shard's summary.json into per-cell blocks. The format is our own
/// writer's (campaign::to_json): a 2-space-indented header with the
/// "interrupted" flag, then one 4-space-indented object per cell. Anything
/// that deviates is a typed parse error — summaries are machine-written, so
/// deviation means corruption, not style.
Error parse_summary_json(const std::string& body, std::uint32_t shard,
                         ShardSummary& out) {
  const std::string where = "shard " + std::to_string(shard);
  std::istringstream is(body);
  std::string line;
  if (!std::getline(is, line) || line != "{") {
    return Error::parse(where + ": summary.json missing '{'");
  }
  if (!std::getline(is, line) ||
      line.rfind("  \"interrupted\": ", 0) != 0) {
    return Error::parse(where + ": summary.json missing interrupted flag");
  }
  out.interrupted = line.find("true") != std::string::npos;
  if (!std::getline(is, line)) {
    return Error::parse(where + ": summary.json missing cells array");
  }
  // Optional (absent in pre-triage summaries): the campaign-wide
  // quarantined-genome count, summed across shards at reassembly.
  constexpr std::string_view kQuarantined = "  \"quarantined\": ";
  if (line.rfind(kQuarantined, 0) == 0) {
    out.quarantined = static_cast<std::size_t>(
        std::strtoull(line.c_str() + kQuarantined.size(), nullptr, 10));
    if (!std::getline(is, line)) {
      return Error::parse(where + ": summary.json missing cells array");
    }
  }
  if (line != "  \"cells\": [") {
    return Error::parse(where + ": summary.json missing cells array");
  }
  std::string block, name;
  bool in_block = false;
  while (std::getline(is, line)) {
    if (!in_block) {
      if (line == "    {") {
        in_block = true;
        block = line + "\n";
        name.clear();
        continue;
      }
      if (line == "  ]") break;  // end of cells
      return Error::parse(where + ": unexpected summary.json line: " + line);
    }
    if (line == "    }" || line == "    },") {
      block += "    }\n";  // normalized: comma re-added at reassembly
      if (name.empty()) {
        return Error::corrupt(where + ": summary.json cell block without a "
                              "name");
      }
      if (!out.json_blocks.emplace(name, std::move(block)).second) {
        return Error::corrupt(where + ": summary.json duplicate cell: " + name);
      }
      block.clear();
      in_block = false;
      continue;
    }
    block += line + "\n";
    constexpr std::string_view kName = "      \"name\": \"";
    if (name.empty() && line.rfind(kName, 0) == 0) {
      // Keep the *escaped* name text; lookups compare escaped forms.
      const std::size_t end = line.rfind("\",");
      if (end == std::string::npos || end < kName.size()) {
        return Error::parse(where + ": bad name line: " + line);
      }
      name = line.substr(kName.size(), end - kName.size());
    }
  }
  if (in_block) {
    return Error::truncated(where + ": summary.json ends mid-cell");
  }
  return Error::success();
}

Error load_shard_summary(const std::string& root, std::uint32_t shard,
                         ShardSummary& out) {
  const fs::path dir(shard_dir(root, shard));
  Result<std::string> csv = slurp(dir / "summary.csv");
  if (!csv) return csv.error();
  if (Error e = parse_summary_csv(*csv, shard, out)) return e;
  Result<std::string> json = slurp(dir / "summary.json");
  if (!json) return json.error();
  return parse_summary_json(*json, shard, out);
}

}  // namespace

std::string shard_dir(const std::string& root, std::uint32_t shard) {
  return root + "/shards/" + std::to_string(shard);
}

Result<MergeStats> merge_reports(const std::string& shards_root,
                                 const ShardPlan& plan,
                                 const std::string& out_dir) {
  MergeStats stats;

  // Load every shard that owns at least one cell.
  std::map<std::uint32_t, ShardSummary> shards;
  for (const auto& entry : plan.entries) {
    if (shards.count(entry.shard)) continue;
    ShardSummary summary;
    if (Error e = load_shard_summary(shards_root, entry.shard, summary)) {
      return e;
    }
    stats.interrupted = stats.interrupted || summary.interrupted;
    stats.genomes_quarantined += summary.quarantined;
    shards.emplace(entry.shard, std::move(summary));
  }
  stats.shards_read = shards.size();

  // Reassemble the summaries in global cell order. Rows and blocks are the
  // shard writers' bytes, so the merged files match the single-process run's.
  // A planned cell missing from its shard is normally a hard mismatch; a
  // quarantine marker turns it into a skip (the merged report simply omits
  // the cell the supervisor had to isolate).
  std::string csv = campaign::summary_csv_header();
  std::vector<std::string> blocks;
  std::vector<const ShardPlan::Entry*> merged;
  for (const ShardPlan::Entry& entry : plan.entries) {
    const ShardSummary& shard = shards.at(entry.shard);
    const auto row = shard.csv_rows.find(campaign::csv_field(entry.cell));
    const auto block = shard.json_blocks.find(campaign::json_escape(entry.cell));
    if (row == shard.csv_rows.end() || block == shard.json_blocks.end()) {
      const fs::path marker = fs::path(shards_root) / "quarantine" / "cells" /
                              (campaign::sanitize_cell_name(entry.cell) +
                               ".cell");
      if (fs::exists(marker)) {
        CCFUZZ_LOG_WARN("merge: cell '%s' is quarantined (%s); omitting it "
                        "from the merged report",
                        entry.cell.c_str(), marker.string().c_str());
        ++stats.cells_quarantined;
        continue;
      }
      return Error::mismatch("cell '" + entry.cell + "' missing from shard " +
                             std::to_string(entry.shard) + "'s summary");
    }
    csv += row->second;
    blocks.push_back(block->second);
    merged.push_back(&entry);
  }
  std::string json = "{\n  \"interrupted\": ";
  json += stats.interrupted ? "true" : "false";
  json += ",\n  \"quarantined\": " + std::to_string(stats.genomes_quarantined);
  json += ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    json += blocks[i];
    if (i + 1 < blocks.size()) {
      json.back() = ',';  // "    }\n" → "    },\n"
      json += '\n';
    }
  }
  json += "  ]\n}\n";
  stats.cells = merged.size();

  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) {
    return Error::io("cannot create " + out_dir + ": " + ec.message());
  }
  if (Error e = write_file_atomic(out_dir + "/summary.csv", csv)) return e;
  if (Error e = write_file_atomic(out_dir + "/summary.json", json)) return e;

  // Per-cell artifacts are shard-local and final: copy the directories over
  // (quarantined cells have none).
  fuzz::EliteArchive merged_archive;
  for (const ShardPlan::Entry* ep : merged) {
    const ShardPlan::Entry& entry = *ep;
    const std::string cell_dir = campaign::sanitize_cell_name(entry.cell);
    const fs::path src =
        fs::path(shard_dir(shards_root, entry.shard)) / cell_dir;
    const fs::path dst = fs::path(out_dir) / cell_dir;
    if (!fs::exists(src)) {
      return Error::corrupt("shard " + std::to_string(entry.shard) +
                            " has no report directory for cell '" +
                            entry.cell + "'");
    }
    const bool same_dir = fs::exists(dst) && fs::equivalent(src, dst, ec);
    ec.clear();
    if (!same_dir) {
      fs::remove_all(dst, ec);
      ec.clear();
      fs::copy(src, dst, fs::copy_options::recursive, ec);
      if (ec) {
        return Error::io("cannot copy " + src.string() + " to " +
                         dst.string() + ": " + ec.message());
      }
    }
    // Union the cell's behavior archive into the campaign-wide map. A
    // corrupt archive is a crash artifact: warn and keep merging.
    const fs::path archive = src / "archive.txt";
    if (fs::exists(archive)) {
      Result<fuzz::EliteArchive> a =
          fuzz::EliteArchive::try_load_file(archive.string());
      if (a) {
        merged_archive.merge_from(*a);
        ++stats.archives_merged;
      } else {
        CCFUZZ_LOG_WARN("merge: archive %s unusable (%s: %s); skipping",
                        archive.string().c_str(),
                        to_string(a.error().code), a.error().message.c_str());
      }
    }
  }
  if (stats.archives_merged > 0) {
    merged_archive.save_file(out_dir + "/archive_merged.txt");
    stats.archive_cells = merged_archive.filled();
    stats.coverage_bits = merged_archive.union_bits();
  }
  return stats;
}

}  // namespace ccfuzz::dist
