#include "dist/restart_policy.h"

namespace ccfuzz::dist {

RestartPolicy::RestartPolicy(RestartPolicyConfig cfg)
    : cfg_(cfg), rng_(cfg.seed + 0x9e3779b97f4a7c15ULL) {}

double RestartPolicy::jitter_factor() {
  if (cfg_.jitter <= 0) return 1.0;
  // splitmix64: tiny, seedable, and good enough to decorrelate shards.
  std::uint64_t z = (rng_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double unit = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
  return 1.0 + cfg_.jitter * unit;
}

int RestartPolicy::in_window(double now) {
  while (!deaths_.empty() && now - deaths_.front() > cfg_.window_s) {
    deaths_.pop_front();
  }
  return static_cast<int>(deaths_.size());
}

double RestartPolicy::on_death(double now) {
  if (in_window(now) >= cfg_.budget) return -1.0;
  deaths_.push_back(now);
  double delay = cfg_.base_delay_s;
  for (int i = 0; i < streak_ && delay < cfg_.max_delay_s; ++i) delay *= 2.0;
  if (delay > cfg_.max_delay_s) delay = cfg_.max_delay_s;
  ++streak_;
  return delay * jitter_factor();
}

void RestartPolicy::reset_backoff() { streak_ = 0; }

}  // namespace ccfuzz::dist
