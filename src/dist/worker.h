// One distributed-campaign worker: the shard-local campaign driver.
//
// A worker owns the subset of the campaign matrix that ShardPlan::shard_of
// assigns to it, and runs it through the ordinary single-process Campaign
// driver into `<root>/shards/<k>/` — checkpointing, crash-resume
// (PR 7's checkpoint_every/resume_dir, verbatim: the shard directory is its
// own resume_dir, so a restarted worker continues bit-identically), report
// writing and all. Progress streams to stdout as JSONL with every line
// tagged `"shard":<k>`, which is what the supervisor multiplexes into the
// campaign-wide aggregate feed; per-generation heartbeat events keep the
// stream flowing so a hung worker is distinguishable from a slow one.
#pragma once

#include <string>
#include <vector>

#include "campaign/campaign.h"

namespace ccfuzz::dist {

/// Exit code of a worker whose campaign stopped on a shutdown request
/// (SIGINT/SIGTERM) before finishing: its state is checkpointed and the same
/// invocation resumes it. The supervisor restarts such workers unless the
/// stop was its own.
inline constexpr int kWorkerInterruptedExit = 3;

struct WorkerOptions {
  int shard = 0;
  int num_shards = 1;
  /// Campaign root; this worker writes under `<root>/shards/<shard>/`.
  std::string root;
  /// Lockstep generations between checkpoints (see
  /// CampaignConfig::checkpoint_every). Every worker checkpoints by default:
  /// supervisor restarts depend on it.
  int checkpoint_every = 1;
  /// Sleep after every generation event (test hook — lets kill-mid-campaign
  /// tests land reliably; 0 for real use).
  int throttle_ms = 0;
  /// Stream shard-tagged JSONL progress (and heartbeats) to stdout.
  bool jsonl_stdout = true;
  /// Cells this worker owns but must not run — quarantined by the
  /// supervisor after repeated deaths. Dropping a cell invalidates the
  /// shard checkpoint's cell count, so the survivors restart fresh; that is
  /// the accepted cost of isolating a poison cell.
  std::vector<std::string> skip_cells;
};

/// Runs the worker's subset of `full` (the whole campaign's config — every
/// worker expands the same matrix and keeps the cells it owns, so no
/// coordination is needed). Returns 0 on completion,
/// kWorkerInterruptedExit on a graceful stop, and throws what the campaign
/// throws on configuration errors. A worker owning zero cells writes an
/// empty report tree and returns 0.
int run_worker(const campaign::CampaignConfig& full, const WorkerOptions& opt);

}  // namespace ccfuzz::dist
