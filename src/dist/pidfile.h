// Worker pid-file triage: is the recorded pid still *our* worker?
//
// Each shard directory carries a `worker.pid` written at spawn. After a
// supervisor crash (or an operator kill -9), that file survives with a pid
// that may now be dead, or — worse — recycled by the kernel for an
// unrelated process. Before a resumed supervisor reclaims a shard it
// triages the stale file: a missing process means the shard is safely
// reclaimable; a live pid whose /proc/<pid>/exe no longer points at our
// binary is a recycled pid (also reclaimable, with a louder warning); a
// live pid still running our binary means another supervisor may own the
// campaign and the caller should refuse to double-run it.
#pragma once

#include <string>

#include "util/error.h"

namespace ccfuzz::dist {

enum class PidStatus {
  kAbsent,   ///< no pid file, or unparseable — nothing to reclaim
  kMissing,  ///< pid file present but the process is gone (stale, reclaim)
  kStale,    ///< pid alive but running a different binary (recycled pid)
  kLive,     ///< pid alive and its executable matches `expect_binary`
};

/// Display name ("absent", "missing", "stale", "live").
const char* to_string(PidStatus s);

struct PidCheck {
  PidStatus status = PidStatus::kAbsent;
  int pid = 0;
  /// What /proc/<pid>/exe resolved to for kStale/kLive (may be empty when
  /// unreadable — permission-restricted pids degrade to kStale).
  std::string exe;
};

/// Triages `pid_path` against `expect_binary` (the path the supervisor
/// execs workers from). Never throws; unreadable /proc answers degrade
/// toward kStale rather than kLive so a resume is not blocked by a pid we
/// cannot prove is ours.
PidCheck check_pid_file(const std::string& pid_path,
                        const std::string& expect_binary);

}  // namespace ccfuzz::dist
