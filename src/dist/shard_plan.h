// Deterministic partitioning of a campaign's cell matrix across workers.
//
// Campaign cells are independent (each cell's GA is a pure function of its
// own config and seed — see src/campaign/campaign.h), so a campaign shards
// by cell: every cell is owned by exactly one worker, chosen by a stable
// hash of the cell name. Stability is the load-bearing property: any
// process that knows the full cell list and the worker count derives the
// identical assignment with no coordination — a worker recomputes its own
// subset, the supervisor plans without talking to workers, and a merge run
// weeks later still knows which shard owns which cell.
//
// The plan serializes as `shard_plan.json` in the campaign root so the
// merge step (and humans triaging a shard tree) can recover the global
// cell order and ownership without re-expanding the campaign config.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.h"
#include "util/error.h"

namespace ccfuzz::dist {

/// The cell → shard assignment of one campaign, in global cell order.
struct ShardPlan {
  struct Entry {
    std::string cell;     ///< campaign cell name (CellConfig::name)
    std::uint32_t shard;  ///< owning worker, in [0, num_shards)
  };

  int num_shards = 1;
  /// One entry per campaign cell, preserving CampaignConfig::cells() order —
  /// the order summary rows appear in, which the merge step reproduces.
  std::vector<Entry> entries;

  /// Stable owner of a cell: FNV-1a of the cell name, finalized with a
  /// 64-bit mixer (FNV-1a's low bits alone are too linear for a small
  /// modulus), mod `num_shards`. Depends only on the name, so adding or
  /// removing *other* cells never reshuffles existing assignments.
  static std::uint32_t shard_of(std::string_view cell_name, int num_shards);

  /// Builds the plan for a campaign's expanded cell list.
  /// Throws std::invalid_argument when num_shards < 1.
  static ShardPlan build(const std::vector<campaign::CellConfig>& cells,
                         int num_shards);

  /// Indices (into `entries`, i.e. global cell order) owned by `shard`.
  std::vector<std::size_t> cells_of(std::uint32_t shard) const;
  /// Number of cells owned by `shard`.
  std::size_t cell_count(std::uint32_t shard) const;

  // ---- Persistence (shard_plan.json) ----
  std::string to_json() const;
  /// Atomic write of to_json() (write-temp + rename, like checkpoints).
  Error save_file(const std::string& path) const;
  /// Parses a plan written by save_file without throwing. Error codes follow
  /// the repo convention: kIo (unopenable), kParse (malformed), kCorrupt
  /// (parsed but invalid: shard out of range, duplicate cell), kTruncated
  /// (file ends mid-structure).
  static Result<ShardPlan> try_load_file(const std::string& path);
  static Result<ShardPlan> try_load(std::istream& is);
};

}  // namespace ccfuzz::dist
