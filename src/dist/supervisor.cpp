#include "dist/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <map>
#include <string_view>
#include <utility>

#include "campaign/campaign.h"
#include "campaign/report.h"
#include "dist/merge.h"
#include "dist/pidfile.h"
#include "util/fs.h"
#include "util/logging.h"

namespace ccfuzz::dist {

namespace fs = std::filesystem;

namespace {

/// `"delay_s":0.25`-style fixed-point formatting for feed events.
std::string format_s(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// The worker's current cell, if this feed line names one (heartbeat and
/// generation events both carry `"cell":"<name>"`).
void note_cell(std::string_view line, std::string& last_cell) {
  constexpr std::string_view kTag = "\"cell\":\"";
  const std::size_t at = line.find(kTag);
  if (at == std::string_view::npos) return;
  const std::size_t start = at + kTag.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string_view::npos) return;
  last_cell.assign(line.substr(start, end - start));
}

}  // namespace

struct Supervisor::Worker {
  std::uint32_t shard = 0;
  pid_t pid = -1;           ///< -1: not running
  int fd = -1;              ///< read end of the worker's stdout pipe
  std::string buffer;       ///< bytes since the last newline
  int restarts = 0;         ///< lifetime restarts (display only)
  RestartPolicy policy;
  double respawn_at = -1.0;  ///< clock time of the pending respawn; < 0 none
  double last_activity = 0.0;
  std::string last_cell;    ///< latest cell named on the worker's feed
  std::map<std::string, int> cell_deaths;
  std::vector<std::string> skip_cells;  ///< quarantined, passed on respawn
  bool done = false;
  bool failed = false;

  explicit Worker(RestartPolicyConfig cfg) : policy(cfg) {}
};

Supervisor::Supervisor(SupervisorOptions opt, ShardPlan plan)
    : opt_(std::move(opt)), plan_(std::move(plan)) {}

Supervisor::~Supervisor() = default;

std::FILE* Supervisor::log_stream() const {
  return opt_.log ? opt_.log : stderr;
}

double Supervisor::now_s() const {
  if (opt_.clock) return opt_.clock();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Supervisor::emit_event(const std::string& json) {
  if (!feed_) return;
  std::fwrite(json.data(), 1, json.size(), feed_);
  std::fputc('\n', feed_);
  std::fflush(feed_);
}

bool Supervisor::reclaim_pid_file(const Worker& w) {
  const std::string path = shard_dir(opt_.root, w.shard) + "/worker.pid";
  const PidCheck check = check_pid_file(path, opt_.binary);
  switch (check.status) {
    case PidStatus::kAbsent:
      return true;
    case PidStatus::kLive:
      std::fprintf(log_stream(),
                   "[supervisor] shard %u: worker pid %d is still alive and "
                   "running %s — is another supervisor driving this "
                   "campaign? refusing to double-run\n",
                   w.shard, check.pid, check.exe.c_str());
      return false;
    case PidStatus::kMissing:
      std::fprintf(log_stream(),
                   "[supervisor] shard %u: stale worker.pid (pid %d is "
                   "gone); reclaiming the shard\n",
                   w.shard, check.pid);
      break;
    case PidStatus::kStale:
      std::fprintf(log_stream(),
                   "[supervisor] shard %u: worker.pid names pid %d which is "
                   "not our worker (%s) — recycled pid; reclaiming the "
                   "shard\n",
                   w.shard, check.pid,
                   check.exe.empty() ? "unreadable" : check.exe.c_str());
      break;
  }
  std::error_code ec;
  fs::remove(path, ec);
  return true;
}

bool Supervisor::spawn(Worker& w, int restart) {
  const std::string dir = shard_dir(opt_.root, w.shard);
  std::error_code ec;
  fs::create_directories(dir, ec);

  int fds[2];
  if (pipe(fds) != 0) {
    CCFUZZ_LOG_ERROR("supervisor: pipe failed for shard %u", w.shard);
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    CCFUZZ_LOG_ERROR("supervisor: fork failed for shard %u", w.shard);
    return false;
  }
  if (pid == 0) {
    // Child: stdout becomes the supervisor pipe, then become the worker.
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    std::vector<std::string> args = {
        opt_.binary,
        "worker",
        "--shard",
        std::to_string(w.shard) + "/" + std::to_string(plan_.num_shards),
        "--output",
        opt_.root,
    };
    args.insert(args.end(), opt_.worker_flags.begin(),
                opt_.worker_flags.end());
    if (!w.skip_cells.empty()) {
      std::string csv;
      for (const std::string& c : w.skip_cells) {
        if (!csv.empty()) csv += ',';
        csv += c;
      }
      args.push_back("--skip-cells");
      args.push_back(std::move(csv));
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(opt_.binary.c_str(), argv.data());
    _exit(127);  // exec failed; 127 lands in the restart budget like a crash
  }
  close(fds[1]);
  fcntl(fds[0], F_SETFL, O_NONBLOCK);
  fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  w.pid = pid;
  w.fd = fds[0];
  w.buffer.clear();
  w.last_activity = now_s();
  // The pid file lets external tooling (kill tests, ops) target the live
  // worker; each restart rewrites it.
  write_file_atomic(dir + "/worker.pid", std::to_string(pid) + "\n");
  emit_event("{\"event\":\"worker_start\",\"shard\":" +
             std::to_string(w.shard) + ",\"pid\":" + std::to_string(pid) +
             ",\"restart\":" + std::to_string(restart) + "}");
  if (restart > 0) {
    emit_event("{\"event\":\"worker_restart\",\"shard\":" +
               std::to_string(w.shard) + ",\"pid\":" + std::to_string(pid) +
               ",\"restart\":" + std::to_string(restart) + "}");
  }
  std::fprintf(log_stream(), "[supervisor] shard %u: worker pid %d%s\n",
               w.shard, static_cast<int>(pid),
               restart > 0 ? " (restarted)" : "");
  return true;
}

bool Supervisor::drain(Worker& w) {
  char buf[4096];
  while (true) {
    const ssize_t n = read(w.fd, buf, sizeof buf);
    if (n > 0) {
      w.buffer.append(buf, static_cast<std::size_t>(n));
      w.last_activity = now_s();
      std::size_t pos;
      while ((pos = w.buffer.find('\n')) != std::string::npos) {
        note_cell(std::string_view(w.buffer.data(), pos), w.last_cell);
        if (feed_) std::fwrite(w.buffer.data(), 1, pos + 1, feed_);
        w.buffer.erase(0, pos + 1);
      }
      if (feed_) std::fflush(feed_);
      continue;
    }
    if (n == 0) return false;  // EOF: worker gone
    if (errno == EINTR) continue;
    return true;  // EAGAIN: drained for now
  }
}

void Supervisor::quarantine_cell(Worker& w, const std::string& cell) {
  for (const std::string& c : w.skip_cells) {
    if (c == cell) return;
  }
  const std::string dir = opt_.root + "/quarantine/cells";
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string marker =
      dir + "/" + campaign::sanitize_cell_name(cell) + ".cell";
  write_file_atomic(marker, "cell " + cell + "\nshard " +
                                std::to_string(w.shard) + "\ndeaths " +
                                std::to_string(w.cell_deaths[cell]) + "\n");
  w.skip_cells.push_back(cell);
  // The crash's cause is isolated; the survivors deserve a clean slate.
  w.policy.reset_backoff();
  emit_event("{\"event\":\"cell_quarantined\",\"shard\":" +
             std::to_string(w.shard) + ",\"cell\":\"" +
             campaign::json_escape(cell) +
             "\",\"deaths\":" + std::to_string(w.cell_deaths[cell]) + "}");
  std::fprintf(log_stream(),
               "[supervisor] shard %u: cell '%s' killed its worker %d "
               "times — quarantined to %s; continuing without it\n",
               w.shard, cell.c_str(), w.cell_deaths[cell], marker.c_str());
}

void Supervisor::handle_exit(Worker& w, int wait_status) {
  close(w.fd);
  w.fd = -1;
  const pid_t pid = w.pid;
  w.pid = -1;
  // A killed worker's last line may be torn; the aggregate feed carries
  // whole lines only, so the fragment is dropped (its events replay on
  // restart from the checkpoint anyway).
  w.buffer.clear();

  int code = -1;
  int sig = 0;
  if (WIFEXITED(wait_status)) code = WEXITSTATUS(wait_status);
  if (WIFSIGNALED(wait_status)) sig = WTERMSIG(wait_status);
  emit_event("{\"event\":\"worker_exit\",\"shard\":" +
             std::to_string(w.shard) + ",\"pid\":" + std::to_string(pid) +
             ",\"code\":" + std::to_string(code) +
             ",\"signal\":" + std::to_string(sig) + "}");

  if (code == 0) {
    w.done = true;
    std::error_code ec;
    fs::remove(shard_dir(opt_.root, w.shard) + "/worker.pid", ec);
    return;
  }
  if (campaign::stop_requested()) {
    // Our own stop: an interrupted exit (or signal death) is the expected
    // drain, state is checkpointed, no restart. A rerun resumes the shard.
    interrupted_ = true;
    w.done = true;
    return;
  }

  // Poison attribution: repeated deaths at the same cell point at the cell,
  // not the machine — quarantine it so the rest of the shard completes.
  if (opt_.poison_threshold > 0 && !w.last_cell.empty()) {
    const int deaths = ++w.cell_deaths[w.last_cell];
    if (deaths >= opt_.poison_threshold) quarantine_cell(w, w.last_cell);
  }

  const double now = now_s();
  const double delay = w.policy.on_death(now);
  if (delay < 0) {
    w.failed = true;
    std::fprintf(log_stream(),
                 "[supervisor] shard %u: worker died (code %d, signal %d), "
                 "restart budget exhausted (%d in %.0fs window)\n",
                 w.shard, code, sig, w.policy.in_window(now),
                 opt_.restart_window_s);
    return;
  }
  ++w.restarts;
  w.respawn_at = now + delay;
  emit_event("{\"event\":\"worker_backoff\",\"shard\":" +
             std::to_string(w.shard) +
             ",\"restart\":" + std::to_string(w.restarts) +
             ",\"delay_s\":" + format_s(delay) + "}");
  std::fprintf(log_stream(),
               "[supervisor] shard %u: worker died (code %d, signal %d), "
               "restart %d in %.3fs\n",
               w.shard, code, sig, w.restarts, delay);
}

int Supervisor::run() {
  std::error_code ec;
  fs::create_directories(opt_.root, ec);

  // Disk preflight: refuse to start a campaign the filesystem cannot hold.
  if (opt_.min_free_bytes > 0) {
    if (Result<std::uint64_t> free = free_bytes(opt_.root);
        free && *free < opt_.min_free_bytes) {
      CCFUZZ_LOG_ERROR(
          "supervisor: only %llu bytes free under %s (need %llu); refusing "
          "to start — free space or lower min_free_bytes",
          static_cast<unsigned long long>(*free), opt_.root.c_str(),
          static_cast<unsigned long long>(opt_.min_free_bytes));
      return 1;
    }
  }

  if (Error e = plan_.save_file(opt_.root + "/shard_plan.json")) {
    CCFUZZ_LOG_ERROR("supervisor: cannot write shard plan: %s",
                     e.message.c_str());
    return 1;
  }

  // Resume-aware feed: appending (after repairing a torn tail) keeps the
  // full campaign history in one file across supervisor restarts.
  const std::string feed_path = opt_.root + "/progress.jsonl";
  const bool resuming_feed = fs::exists(feed_path);
  if (resuming_feed) {
    if (Result<std::uint64_t> dropped = truncate_torn_tail(feed_path);
        dropped && *dropped > 0) {
      std::fprintf(log_stream(),
                   "[supervisor] repaired %s: dropped a torn final line "
                   "(%llu bytes)\n",
                   feed_path.c_str(),
                   static_cast<unsigned long long>(*dropped));
    }
  }
  feed_ = std::fopen(feed_path.c_str(), resuming_feed ? "a" : "w");
  if (!feed_) {
    CCFUZZ_LOG_ERROR("supervisor: cannot open %s", feed_path.c_str());
    return 1;
  }

  RestartPolicyConfig rcfg;
  rcfg.base_delay_s = opt_.restart_base_delay_s;
  rcfg.max_delay_s = opt_.restart_max_delay_s;
  rcfg.budget = opt_.max_restarts;
  rcfg.window_s = opt_.restart_window_s;
  rcfg.jitter = opt_.restart_jitter;

  workers_.clear();
  for (int k = 0; k < plan_.num_shards; ++k) {
    if (plan_.cell_count(static_cast<std::uint32_t>(k)) == 0) {
      continue;  // nothing to do; merge never reads an unowned shard
    }
    rcfg.seed = static_cast<std::uint64_t>(k);  // decorrelates shard jitter
    Worker w(rcfg);
    w.shard = static_cast<std::uint32_t>(k);
    workers_.push_back(std::move(w));
  }
  std::fprintf(log_stream(),
               "[supervisor] %zu worker(s) over %d shard(s), %zu cell(s)\n",
               workers_.size(), plan_.num_shards, plan_.entries.size());

  bool any_failed = false;
  for (auto& w : workers_) {
    if (!reclaim_pid_file(w)) {
      std::fclose(feed_);
      feed_ = nullptr;
      return 1;
    }
    if (!spawn(w, 0)) {
      w.failed = true;
      any_failed = true;
    }
  }

  bool stop_forwarded = false;
  double last_disk_check = now_s();
  while (true) {
    const double now = now_s();

    // Fire due respawns (deadlines, not sleeps: healthy workers keep
    // draining while a crashing one waits out its backoff).
    for (auto& w : workers_) {
      if (w.respawn_at >= 0 && now >= w.respawn_at) {
        w.respawn_at = -1.0;
        if (!spawn(w, w.restarts)) w.failed = true;
      }
    }

    std::vector<pollfd> fds;
    std::vector<Worker*> live;
    bool respawn_pending = false;
    for (auto& w : workers_) {
      if (w.respawn_at >= 0) respawn_pending = true;
      if (w.pid < 0) continue;
      fds.push_back({w.fd, POLLIN, 0});
      live.push_back(&w);
    }
    if (live.empty() && !respawn_pending) break;

    if (campaign::stop_requested() && !stop_forwarded) {
      stop_forwarded = true;
      interrupted_ = true;
      for (Worker* w : live) kill(w->pid, SIGTERM);
      // Cancel pending backoff respawns: their shards are checkpointed
      // where they died; the rerun resumes them.
      for (auto& w : workers_) {
        if (w.respawn_at >= 0) {
          w.respawn_at = -1.0;
          w.done = true;
        }
      }
      std::fprintf(log_stream(),
                   "[supervisor] stop requested; draining %zu worker(s)\n",
                   live.size());
      if (live.empty()) break;
    }

    // Short timeout while a respawn deadline is pending so it fires close
    // to schedule; poll with no fds is just the wait.
    const int timeout_ms = respawn_pending ? 20 : 200;
    const int n =
        poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (n < 0 && errno != EINTR) {
      CCFUZZ_LOG_ERROR("supervisor: poll failed (errno %d)", errno);
      break;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      Worker& w = *live[i];
      if (w.pid < 0 || !(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
        continue;
      }
      if (!drain(w)) {
        int status = 0;
        waitpid(w.pid, &status, 0);
        handle_exit(w, status);
      }
    }

    // Low-space watch: draining while checkpoints still fit beats letting
    // every worker hit ENOSPC mid-write. Reuses the cooperative stop path.
    if (opt_.min_free_bytes > 0 && !campaign::stop_requested() &&
        now - last_disk_check >= 2.0) {
      last_disk_check = now;
      if (Result<std::uint64_t> free = free_bytes(opt_.root);
          free && *free < opt_.min_free_bytes) {
        emit_event("{\"event\":\"low_disk\",\"free_bytes\":" +
                   std::to_string(*free) + "}");
        std::fprintf(log_stream(),
                     "[supervisor] only %llu bytes free under %s — draining "
                     "gracefully (rerun after freeing space to resume)\n",
                     static_cast<unsigned long long>(*free),
                     opt_.root.c_str());
        campaign::request_stop();
      }
    }

    if (opt_.heartbeat_timeout_s > 0 && !campaign::stop_requested()) {
      for (auto& w : workers_) {
        if (w.pid < 0) continue;
        const double silence = now - w.last_activity;
        if (silence <= opt_.heartbeat_timeout_s) continue;
        emit_event("{\"event\":\"worker_stall\",\"shard\":" +
                   std::to_string(w.shard) +
                   ",\"pid\":" + std::to_string(w.pid) + "}");
        std::fprintf(log_stream(),
                     "[supervisor] shard %u: no output for %.1fs, killing "
                     "pid %d\n",
                     w.shard, silence, static_cast<int>(w.pid));
        kill(w.pid, SIGKILL);
        w.last_activity = now;  // one kill per silence window
      }
    }
  }

  std::fclose(feed_);
  feed_ = nullptr;
  for (const auto& w : workers_) any_failed = any_failed || w.failed;
  return any_failed ? 1 : 0;
}

}  // namespace ccfuzz::dist
