#include "dist/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <utility>

#include "campaign/campaign.h"
#include "dist/merge.h"
#include "util/fs.h"
#include "util/logging.h"

namespace ccfuzz::dist {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct Supervisor::Worker {
  std::uint32_t shard = 0;
  pid_t pid = -1;           ///< -1: not running
  int fd = -1;              ///< read end of the worker's stdout pipe
  std::string buffer;       ///< bytes since the last newline
  int restarts = 0;
  Clock::time_point last_activity{};
  bool done = false;
  bool failed = false;
};

Supervisor::Supervisor(SupervisorOptions opt, ShardPlan plan)
    : opt_(std::move(opt)), plan_(std::move(plan)) {}

Supervisor::~Supervisor() = default;

std::FILE* Supervisor::log_stream() const {
  return opt_.log ? opt_.log : stderr;
}

void Supervisor::emit_event(const std::string& json) {
  if (!feed_) return;
  std::fwrite(json.data(), 1, json.size(), feed_);
  std::fputc('\n', feed_);
  std::fflush(feed_);
}

bool Supervisor::spawn(Worker& w, int restart) {
  const std::string dir = shard_dir(opt_.root, w.shard);
  std::error_code ec;
  fs::create_directories(dir, ec);

  int fds[2];
  if (pipe(fds) != 0) {
    CCFUZZ_LOG_ERROR("supervisor: pipe failed for shard %u", w.shard);
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    CCFUZZ_LOG_ERROR("supervisor: fork failed for shard %u", w.shard);
    return false;
  }
  if (pid == 0) {
    // Child: stdout becomes the supervisor pipe, then become the worker.
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    std::vector<std::string> args = {
        opt_.binary,
        "worker",
        "--shard",
        std::to_string(w.shard) + "/" + std::to_string(plan_.num_shards),
        "--output",
        opt_.root,
    };
    args.insert(args.end(), opt_.worker_flags.begin(),
                opt_.worker_flags.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(opt_.binary.c_str(), argv.data());
    _exit(127);  // exec failed; 127 lands in the restart budget like a crash
  }
  close(fds[1]);
  fcntl(fds[0], F_SETFL, O_NONBLOCK);
  fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  w.pid = pid;
  w.fd = fds[0];
  w.buffer.clear();
  w.last_activity = Clock::now();
  // The pid file lets external tooling (kill tests, ops) target the live
  // worker; each restart rewrites it.
  write_file_atomic(dir + "/worker.pid", std::to_string(pid) + "\n");
  emit_event("{\"event\":\"worker_start\",\"shard\":" +
             std::to_string(w.shard) + ",\"pid\":" + std::to_string(pid) +
             ",\"restart\":" + std::to_string(restart) + "}");
  std::fprintf(log_stream(), "[supervisor] shard %u: worker pid %d%s\n",
               w.shard, static_cast<int>(pid),
               restart > 0 ? " (restarted)" : "");
  return true;
}

bool Supervisor::drain(Worker& w) {
  char buf[4096];
  while (true) {
    const ssize_t n = read(w.fd, buf, sizeof buf);
    if (n > 0) {
      w.buffer.append(buf, static_cast<std::size_t>(n));
      w.last_activity = Clock::now();
      std::size_t pos;
      while ((pos = w.buffer.find('\n')) != std::string::npos) {
        if (feed_) std::fwrite(w.buffer.data(), 1, pos + 1, feed_);
        w.buffer.erase(0, pos + 1);
      }
      if (feed_) std::fflush(feed_);
      continue;
    }
    if (n == 0) return false;  // EOF: worker gone
    if (errno == EINTR) continue;
    return true;  // EAGAIN: drained for now
  }
}

void Supervisor::handle_exit(Worker& w, int wait_status) {
  close(w.fd);
  w.fd = -1;
  const pid_t pid = w.pid;
  w.pid = -1;
  // A killed worker's last line may be torn; the aggregate feed carries
  // whole lines only, so the fragment is dropped (its events replay on
  // restart from the checkpoint anyway).
  w.buffer.clear();

  int code = -1;
  int sig = 0;
  if (WIFEXITED(wait_status)) code = WEXITSTATUS(wait_status);
  if (WIFSIGNALED(wait_status)) sig = WTERMSIG(wait_status);
  emit_event("{\"event\":\"worker_exit\",\"shard\":" +
             std::to_string(w.shard) + ",\"pid\":" + std::to_string(pid) +
             ",\"code\":" + std::to_string(code) +
             ",\"signal\":" + std::to_string(sig) + "}");

  if (code == 0) {
    w.done = true;
    return;
  }
  if (campaign::stop_requested()) {
    // Our own stop: an interrupted exit (or signal death) is the expected
    // drain, state is checkpointed, no restart. A rerun resumes the shard.
    interrupted_ = true;
    w.done = true;
    return;
  }
  if (w.restarts >= opt_.max_restarts) {
    w.failed = true;
    std::fprintf(log_stream(),
                 "[supervisor] shard %u: worker died (code %d, signal %d), "
                 "restart budget exhausted\n",
                 w.shard, code, sig);
    return;
  }
  ++w.restarts;
  emit_event("{\"event\":\"worker_restart\",\"shard\":" +
             std::to_string(w.shard) +
             ",\"restart\":" + std::to_string(w.restarts) + "}");
  std::fprintf(log_stream(),
               "[supervisor] shard %u: worker died (code %d, signal %d), "
               "restarting from checkpoint (%d/%d)\n",
               w.shard, code, sig, w.restarts, opt_.max_restarts);
  if (!spawn(w, w.restarts)) w.failed = true;
}

int Supervisor::run() {
  std::error_code ec;
  fs::create_directories(opt_.root, ec);
  if (Error e = plan_.save_file(opt_.root + "/shard_plan.json")) {
    CCFUZZ_LOG_ERROR("supervisor: cannot write shard plan: %s",
                     e.message.c_str());
    return 1;
  }
  const std::string feed_path = opt_.root + "/progress.jsonl";
  feed_ = std::fopen(feed_path.c_str(), "w");
  if (!feed_) {
    CCFUZZ_LOG_ERROR("supervisor: cannot open %s", feed_path.c_str());
    return 1;
  }

  workers_.clear();
  for (int k = 0; k < plan_.num_shards; ++k) {
    if (plan_.cell_count(static_cast<std::uint32_t>(k)) == 0) {
      continue;  // nothing to do; merge never reads an unowned shard
    }
    Worker w;
    w.shard = static_cast<std::uint32_t>(k);
    workers_.push_back(std::move(w));
  }
  std::fprintf(log_stream(),
               "[supervisor] %zu worker(s) over %d shard(s), %zu cell(s)\n",
               workers_.size(), plan_.num_shards, plan_.entries.size());

  bool any_failed = false;
  for (auto& w : workers_) {
    if (!spawn(w, 0)) {
      w.failed = true;
      any_failed = true;
    }
  }

  bool stop_forwarded = false;
  while (true) {
    std::vector<pollfd> fds;
    std::vector<Worker*> live;
    for (auto& w : workers_) {
      if (w.pid < 0) continue;
      fds.push_back({w.fd, POLLIN, 0});
      live.push_back(&w);
    }
    if (live.empty()) break;

    if (campaign::stop_requested() && !stop_forwarded) {
      stop_forwarded = true;
      interrupted_ = true;
      for (Worker* w : live) kill(w->pid, SIGTERM);
      std::fprintf(log_stream(),
                   "[supervisor] stop requested; draining %zu worker(s)\n",
                   live.size());
    }

    const int n = poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
    if (n < 0 && errno != EINTR) {
      CCFUZZ_LOG_ERROR("supervisor: poll failed (errno %d)", errno);
      break;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      Worker& w = *live[i];
      if (w.pid < 0 || !(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
        continue;
      }
      if (!drain(w)) {
        int status = 0;
        waitpid(w.pid, &status, 0);
        handle_exit(w, status);
      }
    }

    if (opt_.heartbeat_timeout_s > 0 && !campaign::stop_requested()) {
      const Clock::time_point now = Clock::now();
      for (auto& w : workers_) {
        if (w.pid < 0) continue;
        const double silence =
            std::chrono::duration<double>(now - w.last_activity).count();
        if (silence <= opt_.heartbeat_timeout_s) continue;
        emit_event("{\"event\":\"worker_stall\",\"shard\":" +
                   std::to_string(w.shard) +
                   ",\"pid\":" + std::to_string(w.pid) + "}");
        std::fprintf(log_stream(),
                     "[supervisor] shard %u: no output for %.1fs, killing "
                     "pid %d\n",
                     w.shard, silence, static_cast<int>(w.pid));
        kill(w.pid, SIGKILL);
        w.last_activity = now;  // one kill per silence window
      }
    }
  }

  std::fclose(feed_);
  feed_ = nullptr;
  for (const auto& w : workers_) any_failed = any_failed || w.failed;
  return any_failed ? 1 : 0;
}

}  // namespace ccfuzz::dist
