// Restart pacing for crashed workers: exponential backoff with jitter,
// budgeted per sliding window.
//
// A worker that dies the instant it starts (bad flag, poisoned cell, full
// disk) must not be respawned in a tight loop — that turns one failure into
// a fork bomb and floods the feed with start/exit churn. The policy spaces
// restarts exponentially (base doubling up to a cap) with deterministic
// jitter so co-crashed shards don't resynchronize, and counts restarts
// against a budget *per sliding time window* rather than per lifetime: a
// long-lived campaign is allowed a crash every few hours forever, but a
// crash loop exhausts the window budget and marks the shard failed.
//
// The policy is pure arithmetic over caller-supplied timestamps — no clock
// of its own — so tests drive it with a fake clock and assert exact delays.
#pragma once

#include <cstdint>
#include <deque>

namespace ccfuzz::dist {

struct RestartPolicyConfig {
  /// Delay before the 1st restart; doubles each consecutive restart.
  double base_delay_s = 0.25;
  /// Ceiling on the backoff delay.
  double max_delay_s = 30.0;
  /// Restarts allowed inside any `window_s`-long interval; exceeding it
  /// means give up. <= 0 disables restarts entirely.
  int budget = 3;
  /// Length of the sliding budget window.
  double window_s = 300.0;
  /// Jitter fraction: the delay is scaled by [1, 1 + jitter], chosen
  /// deterministically from a per-shard seed. 0 disables jitter.
  double jitter = 0.25;
  /// Seed for the deterministic jitter sequence (use the shard index).
  std::uint64_t seed = 0;
};

class RestartPolicy {
 public:
  explicit RestartPolicy(RestartPolicyConfig cfg);

  /// Records a death at time `now` (seconds, any monotonic origin) and
  /// returns the delay to wait before respawning, or a negative value when
  /// the window budget is exhausted and the shard should be marked failed.
  double on_death(double now);

  /// Restarts currently counted inside the sliding window at `now`.
  int in_window(double now);

  /// Forgets backoff state (consecutive-crash streak) after recovery — e.g.
  /// once a respawned worker survives long enough, or after a quarantine
  /// removed the crash's cause. The window history is kept: recovering from
  /// a crash does not refund its budget.
  void reset_backoff();

 private:
  double jitter_factor();

  RestartPolicyConfig cfg_;
  int streak_ = 0;                ///< consecutive restarts without a reset
  std::uint64_t rng_;             ///< splitmix64 state for jitter
  std::deque<double> deaths_;     ///< death times inside the current window
};

}  // namespace ccfuzz::dist
