#include "dist/pidfile.h"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace ccfuzz::dist {

const char* to_string(PidStatus s) {
  switch (s) {
    case PidStatus::kAbsent: return "absent";
    case PidStatus::kMissing: return "missing";
    case PidStatus::kStale: return "stale";
    case PidStatus::kLive: return "live";
  }
  return "?";
}

PidCheck check_pid_file(const std::string& pid_path,
                        const std::string& expect_binary) {
  PidCheck out;
  std::FILE* f = std::fopen(pid_path.c_str(), "r");
  if (!f) return out;
  int pid = 0;
  const bool parsed = std::fscanf(f, "%d", &pid) == 1 && pid > 0;
  std::fclose(f);
  if (!parsed) return out;
  out.pid = pid;

  if (::kill(pid, 0) != 0 && errno == ESRCH) {
    out.status = PidStatus::kMissing;
    return out;
  }
  // The pid exists (or we lack permission to signal it — either way it is
  // not ours to reclaim blindly). Compare its executable with ours; symlink
  // resolution normalizes both sides so /proc's resolved target matches a
  // relative `build/tools/ccfuzz`.
  std::error_code ec;
  const std::filesystem::path exe = std::filesystem::read_symlink(
      "/proc/" + std::to_string(pid) + "/exe", ec);
  if (ec) {
    out.status = PidStatus::kStale;  // unprovable — do not claim it is ours
    return out;
  }
  out.exe = exe.string();
  const std::filesystem::path expect =
      std::filesystem::weakly_canonical(expect_binary, ec);
  out.status = (!ec && exe == expect) ? PidStatus::kLive : PidStatus::kStale;
  return out;
}

}  // namespace ccfuzz::dist
