// Finding §4.2: ns-3's CUBIC slow-start bug — cwnd inflated past ssthresh
// by a large post-RTO cumulative ACK, bursting ~1 RTO of data and causing
// catastrophic loss. Compares the buggy and fixed variants on the same
// trace.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "campaign/panel.h"
#include "cca/registry.h"
#include "scenario/crafted.h"
#include "util/csv.h"

using namespace ccfuzz;

int main() {
  bench::banner("Finding 4.2", "ns-3 CUBIC slow-start CWND bug");
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(12);
  cfg.net.queue_capacity = 50;
  cfg.receive_window_segments = 2000;

  // Craft the double-loss (data + fast retransmission) against the buggy
  // CUBIC; the RTO recovery then produces the large cumulative ACK.
  const auto crafted = scenario::crafted::craft_retransmission_killer(
      cfg, cca::make_factory("cubic-ns3bug"), {.max_bursts = 3});

  CsvWriter csv(std::cout, {"cca", "goodput_mbps", "cca_drops",
                            "retransmissions", "rtos"});
  const auto panel =
      campaign::evaluate_panel(cfg, {"cubic-ns3bug", "cubic"}, crafted.trace);
  for (const auto& row : panel) {
    const auto& run = row.run;
    csv.row(row.label, {run.goodput_mbps(), static_cast<double>(run.cca_drops()),
                        static_cast<double>(run.cca_retransmissions()),
                        static_cast<double>(run.rto_count())});
  }
  std::printf("# shape check: cubic-ns3bug suffers more drops than the "
              "clamped (Linux-correct) cubic on the identical trace.\n");
  return 0;
}
