// Figure 4b: a LINK trace (bottleneck service curve) that causes BBR to get
// stuck. The paper's found trace (and ours) has a tell-tale shape: normal
// service until the attack point, one outage that opens a hole during
// recovery (dropping the fast retransmission into a full queue), then
// near-darkness with brief service spikes. The spikes deliver the RTO
// retransmissions just rarely enough that BBR's bandwidth model collapses
// and min-RTO backoff keeps the flow pinned — the link-mode twin of the
// Fig 4a burst train (an outage can only *drop* packets while other
// traffic fills the queue; in silence it can only *delay* them, so the
// lockout is maintained by darkness rather than drops, which is why the
// paper finds link traces "harder to reason about").
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/flow_metrics.h"
#include "bench/bench_util.h"
#include "cca/registry.h"
#include "scenario/runner.h"
#include "util/csv.h"

using namespace ccfuzz;

int main() {
  bench::banner("Figure 4b", "link trace that sticks BBR");
  scenario::ScenarioConfig cfg;
  cfg.mode = scenario::FuzzMode::kLink;
  cfg.duration = TimeNs::seconds(bench::env_long("CCFUZZ_DURATION_S", 8));
  // Steady-state BBR holds ~2×BDP in flight; a smaller gateway than the
  // traffic benches lets the recovery backlog overflow during the outage.
  cfg.net.queue_capacity = 25;
  cfg.receive_window_segments = 2000;
  cfg.log_tcp_events = true;

  // Uniform 12 Mbps until t=2 s; an 80 ms outage at 2 s (drops a flight
  // and the hole's fast retransmission lands in the still-full queue);
  // darkness afterwards except 30-opportunity spikes every ~1.5 s.
  std::vector<TimeNs> curve;
  const TimeNs outage_start = TimeNs::seconds(2);
  const TimeNs outage_end = outage_start + DurationNs::millis(140);
  for (TimeNs t = TimeNs::millis(1); t < outage_start;
       t += DurationNs::millis(1)) {
    curve.push_back(t);
  }
  // Brief post-outage service resumes long enough to SACK the survivors
  // and trigger the fast retransmission into the refilling queue.
  for (TimeNs t = outage_end; t < outage_end + DurationNs::millis(40);
       t += DurationNs::millis(1)) {
    curve.push_back(t);
  }
  for (TimeNs spike = TimeNs::millis(3500); spike < cfg.duration;
       spike += DurationNs::millis(1500)) {
    for (int i = 0; i < 30; ++i) {
      curve.push_back(spike + DurationNs::millis(i));
    }
  }

  cfg.record_mode = scenario::RecordMode::kFullEvents;  // figure reads events
  auto run = scenario::run_scenario(cfg, cca::make_factory("bbr"), curve);

  const DurationNs w = DurationNs::millis(100);
  const auto ingress = analysis::rate_series(
      run, analysis::Stream::kIngress, net::FlowId::kCcaData, w);
  const auto egress = analysis::rate_series(
      run, analysis::Stream::kEgress, net::FlowId::kCcaData, w);
  const auto link = analysis::link_rate_series(run, curve, w);

  CsvWriter csv(std::cout,
                {"time_s", "ingress_mbps", "egress_mbps", "link_mbps"});
  for (std::size_t i = 0; i < egress.time_s.size(); ++i) {
    csv.row({egress.time_s[i], ingress.mbps[i], egress.mbps[i], link.mbps[i]});
  }
  std::printf("# summary: goodput=%.2f Mbps stalled=%d rtos=%lld "
              "marks_lost=%lld drops=%lld\n",
              run.goodput_mbps(),
              run.stalled(DurationNs::seconds(1)) ? 1 : 0,
              static_cast<long long>(run.rto_count()),
              static_cast<long long>(
                  run.tcp_log().count(tcp::TcpEventType::kMarkLost)),
              static_cast<long long>(run.cca_drops()));
  std::printf("# shape check: egress collapses after the outage at t=2 s "
              "and the post-3.5 s service spikes go mostly unused.\n");
  return 0;
}
