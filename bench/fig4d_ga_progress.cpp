// Figure 4d: CC-Fuzz GA progress — mean packets sent over the top-20
// lowest-throughput traces per generation, default BBR vs the paper's
// proposed fix (ProbeRTT on RTO). Both cells run in one campaign with the
// same GA seed (paired initial populations), so the series are directly
// comparable and the evaluation batches interleave across cells.
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "campaign/campaign.h"
#include "util/csv.h"

using namespace ccfuzz;

int main() {
  bench::banner("Figure 4d",
                "GA progress: packets sent, default BBR vs ProbeRTT-on-RTO");

  scenario::ScenarioConfig scfg;
  scfg.duration = TimeNs::seconds(5);
  scfg.net.queue_capacity = 50;

  fuzz::GaConfig gcfg;
  gcfg.population = static_cast<int>(bench::env_long("CCFUZZ_POP", 48));
  gcfg.islands = static_cast<int>(bench::env_long("CCFUZZ_ISLANDS", 4));
  gcfg.max_generations =
      static_cast<int>(bench::env_long("CCFUZZ_GENERATIONS", 8));
  gcfg.crossover_fraction = 0.3;
  gcfg.migration_interval = 10;
  gcfg.migration_fraction = 0.1;
  gcfg.seed = 42;

  campaign::CampaignConfig cfg;
  cfg.ccas({"bbr", "bbr-probertt-on-rto"})
      .modes({scenario::FuzzMode::kTraffic})
      .base_scenario(scfg)
      .score(std::make_shared<fuzz::LowSendRateScore>(),
             {.per_packet = 1e-4, .per_drop = 1e-3})
      .ga(gcfg);

  campaign::Campaign c(cfg);
  const auto& report = c.run();
  const auto& def = report.cells[0].history;
  const auto& fix = report.cells[1].history;

  CsvWriter csv(std::cout,
                {"generation", "bbr_top20_packets_sent",
                 "bbr_fix_top20_packets_sent", "bbr_stalled_traces",
                 "bbr_fix_stalled_traces"});
  for (std::size_t g = 0; g < def.size() && g < fix.size(); ++g) {
    csv.row({static_cast<double>(g), def[g].topk_mean_packets_sent,
             fix[g].topk_mean_packets_sent,
             static_cast<double>(def[g].stalled_count),
             static_cast<double>(fix[g].stalled_count)});
  }
  std::printf(
      "# shape check: both series decline (the fix trades some throughput "
      "for robustness, so the GA can push its packets-sent down by forcing "
      "RTOs); the stall counter separates them — only default BBR "
      "accumulates permanently-stalled traces at paper-scale budgets.\n");
  std::printf("# final: bbr=%.0f (stalled %d) fix=%.0f (stalled %d)\n",
              def.back().topk_mean_packets_sent, def.back().stalled_count,
              fix.back().topk_mean_packets_sent, fix.back().stalled_count);
  return 0;
}
