// Figure 4d: CC-Fuzz GA progress — mean packets sent over the top-20
// lowest-throughput traces per generation, default BBR vs the paper's
// proposed fix (ProbeRTT on RTO).
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "cca/registry.h"
#include "fuzz/fuzzer.h"
#include "util/csv.h"

using namespace ccfuzz;

namespace {

std::vector<fuzz::GenStats> run_ga(const char* cca_name, std::uint64_t seed) {
  scenario::ScenarioConfig scfg;
  scfg.duration = TimeNs::seconds(5);
  scfg.net.queue_capacity = 50;

  trace::TrafficTraceModel tm;
  tm.max_packets = 3000;
  tm.initial_packets = 1500;
  tm.duration = scfg.duration;

  fuzz::GaConfig gcfg;
  gcfg.population = static_cast<int>(bench::env_long("CCFUZZ_POP", 48));
  gcfg.islands = static_cast<int>(bench::env_long("CCFUZZ_ISLANDS", 4));
  gcfg.max_generations =
      static_cast<int>(bench::env_long("CCFUZZ_GENERATIONS", 8));
  gcfg.crossover_fraction = 0.3;
  gcfg.migration_interval = 10;
  gcfg.migration_fraction = 0.1;
  gcfg.seed = seed;

  fuzz::TraceEvaluator ev(
      scfg, cca::make_factory(cca_name),
      std::make_shared<fuzz::LowSendRateScore>(),
      fuzz::TraceScoreWeights{.per_packet = 1e-4, .per_drop = 1e-3});
  fuzz::Fuzzer fuzzer(gcfg, std::make_shared<fuzz::TrafficModel>(tm), ev);
  std::vector<fuzz::GenStats> out;
  for (int g = 0; g < gcfg.max_generations; ++g) out.push_back(fuzzer.step());
  return out;
}

}  // namespace

int main() {
  bench::banner("Figure 4d",
                "GA progress: packets sent, default BBR vs ProbeRTT-on-RTO");
  const auto def = run_ga("bbr", 42);
  const auto fix = run_ga("bbr-probertt-on-rto", 42);

  CsvWriter csv(std::cout,
                {"generation", "bbr_top20_packets_sent",
                 "bbr_fix_top20_packets_sent", "bbr_stalled_traces",
                 "bbr_fix_stalled_traces"});
  for (std::size_t g = 0; g < def.size() && g < fix.size(); ++g) {
    csv.row({static_cast<double>(g), def[g].topk_mean_packets_sent,
             fix[g].topk_mean_packets_sent,
             static_cast<double>(def[g].stalled_count),
             static_cast<double>(fix[g].stalled_count)});
  }
  std::printf(
      "# shape check: both series decline (the fix trades some throughput "
      "for robustness, so the GA can push its packets-sent down by forcing "
      "RTOs); the stall counter separates them — only default BBR "
      "accumulates permanently-stalled traces at paper-scale budgets.\n");
  std::printf("# final: bbr=%.0f (stalled %d) fix=%.0f (stalled %d)\n",
              def.back().topk_mean_packets_sent, def.back().stalled_count,
              fix.back().topk_mean_packets_sent, fix.back().stalled_count);
  return 0;
}
