// Micro-benchmarks for the simulation substrate: event throughput, full
// dumbbell simulation speed, trace generation, and the BBR bandwidth
// filter. These quantify why simulation-based fuzzing parallelizes well
// (paper §3.6).
#include <benchmark/benchmark.h>

#include "cca/registry.h"
#include "scenario/runner.h"
#include "sim/simulator.h"
#include "trace/dist_packets.h"
#include "util/windowed_filter.h"

using namespace ccfuzz;

namespace {

void BM_EventQueueChurn(benchmark::State& state) {
  // Steady-state event churn, matching how production drives the core since
  // scenario::RunContext landed: a warm simulator reused across runs, a
  // bounded live set of near events (packet transmissions/deliveries), RTO-
  // style far-future timers re-armed via cancel(), and run_until() stepping
  // the clock. Before the reusable contexts, every run_scenario() hit a cold
  // queue — that profile is kept as BM_EventQueueChurnCold below.
  sim::Simulator sim;
  for (auto _ : state) {
    sim.reset();
    std::int64_t fired = 0;
    sim::EventId timer = 0;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_in(DurationNs::micros(i), [&fired] { ++fired; });
    }
    for (int i = 0; i < 9'800; ++i) {
      sim.run_until(sim.now() + DurationNs::micros(1));
      sim.schedule_in(DurationNs::micros(100), [&fired] { ++fired; });
      if (i % 10 == 0) {
        sim.cancel(timer);
        timer = sim.schedule_in(DurationNs::millis(1), [&fired] { ++fired; });
      }
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_EventQueueChurnCold(benchmark::State& state) {
  // Cold-queue bulk churn: 10k events scheduled up front into a fresh
  // simulator, then drained. This was the pre-RunContext production profile
  // (and the original BM_EventQueueChurn body).
  for (auto _ : state) {
    sim::Simulator sim;
    std::int64_t fired = 0;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule_in(DurationNs::micros((i * 37) % 1000),
                      [&fired] { ++fired; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueChurnCold);

void BM_EventQueueRtoHeavy(benchmark::State& state) {
  // The far-band stress: every simulated "ACK" re-arms one of 16 flows'
  // RTO-style timers a full second out (cancel + schedule), on top of the
  // steady near-event churn. Virtually none of the far timers survive to
  // their expiry — the armed-then-cancelled pattern that used to fill the
  // heap with stale far handles and now parks them in epoch buckets that
  // are discarded wholesale at migration.
  sim::Simulator sim;
  constexpr int kFlows = 16;
  for (auto _ : state) {
    sim.reset();
    std::int64_t fired = 0;
    sim::EventId rto[kFlows] = {};
    for (int i = 0; i < 100; ++i) {
      sim.schedule_in(DurationNs::micros(i), [&fired] { ++fired; });
    }
    for (int i = 0; i < 9'800; ++i) {
      sim.run_until(sim.now() + DurationNs::micros(1));
      sim.schedule_in(DurationNs::micros(100), [&fired] { ++fired; });
      const int f = i % kFlows;
      sim.cancel(rto[f]);
      rto[f] = sim.schedule_in(DurationNs::seconds(1), [&fired] { ++fired; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueRtoHeavy);

void BM_DumbbellSimulatedSecond(benchmark::State& state) {
  // Cost of one simulated second of a full Reno-over-dumbbell run — the
  // GA's unit of work (~5 of these per trace evaluation).
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(1);
  const auto factory = cca::make_factory("reno");
  for (auto _ : state) {
    const auto run = scenario::run_scenario(cfg, factory, {});
    benchmark::DoNotOptimize(run.cca_segments_delivered());
  }
}
BENCHMARK(BM_DumbbellSimulatedSecond);

void BM_DumbbellBbrSimulatedSecond(benchmark::State& state) {
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(1);
  const auto factory = cca::make_factory("bbr");
  for (auto _ : state) {
    const auto run = scenario::run_scenario(cfg, factory, {});
    benchmark::DoNotOptimize(run.cca_segments_delivered());
  }
}
BENCHMARK(BM_DumbbellBbrSimulatedSecond);

void BM_Dumbbell4FlowSimulatedSecond(benchmark::State& state) {
  // The fairness-mode unit of work: four competing Reno flows sharing the
  // bottleneck for one simulated second, metrics-only like the GA runs it.
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(1);
  cfg.flows.resize(4);
  const auto factory = cca::make_factory("reno");
  for (auto _ : state) {
    const auto run = scenario::run_scenario(cfg, factory, {});
    benchmark::DoNotOptimize(run.cca_segments_delivered());
  }
}
BENCHMARK(BM_Dumbbell4FlowSimulatedSecond);

void BM_Dumbbell16FlowSimulatedSecond(benchmark::State& state) {
  // Incast-scale far-band pressure: sixteen competing flows keep sixteen
  // RTO timers cycling through the far band while the shared bottleneck
  // multiplies the near-event churn.
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(1);
  cfg.flows.resize(16);
  const auto factory = cca::make_factory("reno");
  for (auto _ : state) {
    const auto run = scenario::run_scenario(cfg, factory, {});
    benchmark::DoNotOptimize(run.cca_segments_delivered());
  }
}
BENCHMARK(BM_Dumbbell16FlowSimulatedSecond);

void BM_DumbbellFullEventsSimulatedSecond(benchmark::State& state) {
  // The figure/replay configuration: identical run with the raw per-packet
  // event vectors recorded and copied into the result. The delta against
  // BM_DumbbellSimulatedSecond is what metrics-only fuzzing saves per run.
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(1);
  cfg.record_mode = scenario::RecordMode::kFullEvents;
  const auto factory = cca::make_factory("reno");
  for (auto _ : state) {
    const auto run = scenario::run_scenario(cfg, factory, {});
    benchmark::DoNotOptimize(run.cca_segments_delivered());
  }
}
BENCHMARK(BM_DumbbellFullEventsSimulatedSecond);

void BM_DistPackets5000(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    auto stamps =
        trace::dist_packets(5000, TimeNs::zero(), TimeNs::seconds(5), rng);
    benchmark::DoNotOptimize(stamps.data());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_DistPackets5000);

void BM_WindowedMaxFilter(benchmark::State& state) {
  WindowedMax<double, std::int64_t> filter(10);
  std::int64_t round = 0;
  double v = 100.0;
  for (auto _ : state) {
    v = v * 1.000001 + 1.0;
    benchmark::DoNotOptimize(filter.update(v, ++round));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowedMaxFilter);

}  // namespace

BENCHMARK_MAIN();
