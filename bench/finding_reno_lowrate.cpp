// Finding §4.3: the low-rate (shrew) attack against Reno — rediscovered by
// the adaptive retransmission killer and compared with the classic
// open-loop periodic-burst attack of Kuzmanovic & Knightly.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "campaign/panel.h"
#include "cca/registry.h"
#include "scenario/crafted.h"
#include "util/csv.h"

using namespace ccfuzz;

int main() {
  bench::banner("Finding 4.3", "low-rate TCP attack against Reno");
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(12);
  cfg.net.queue_capacity = 50;
  cfg.receive_window_segments = 2000;

  CsvWriter csv(std::cout, {"attack", "goodput_mbps", "attack_mbps",
                            "rtos", "final_backoff", "stalled"});

  // One panel: clean link plus the three open-loop shrew periods, all
  // against Reno. The adaptive killer's run comes from its construction.
  std::vector<campaign::PanelJob> jobs;
  jobs.push_back({"none", "reno", {}});
  for (int period_ms : {500, 1000, 1500}) {
    char label[32];
    std::snprintf(label, sizeof(label), "shrew-%dms", period_ms);
    jobs.push_back({label, "reno",
                    scenario::crafted::shrew_trace(TimeNs::millis(1500),
                                                   DurationNs::millis(period_ms),
                                                   60, cfg.duration)});
  }
  const auto panel = campaign::evaluate_panel(cfg, jobs);

  const auto attack_mbps = [&](const scenario::RunResult& run) {
    return static_cast<double>(run.cross_sent) * 1500 * 8 /
           cfg.duration.to_seconds() * 1e-6;
  };

  csv.row(panel[0].label, {panel[0].run.goodput_mbps(), 0.0,
                           static_cast<double>(panel[0].run.rto_count()),
                           static_cast<double>(panel[0].run.final_rto_backoff()),
                           0.0});

  const auto crafted = scenario::crafted::craft_retransmission_killer(
      cfg, cca::make_factory("reno"));
  const auto& k = crafted.final_run;
  csv.row("adaptive-killer",
          {k.goodput_mbps(), attack_mbps(k),
           static_cast<double>(k.rto_count()),
           static_cast<double>(k.final_rto_backoff()),
           k.stalled(DurationNs::seconds(1)) ? 1.0 : 0.0});

  for (std::size_t i = 1; i < panel.size(); ++i) {
    const auto& run = panel[i].run;
    csv.row(panel[i].label, {run.goodput_mbps(), attack_mbps(run),
                             static_cast<double>(run.rto_count()),
                             static_cast<double>(run.final_rto_backoff()),
                             run.stalled(DurationNs::seconds(1)) ? 1.0 : 0.0});
  }
  std::printf("# shape check: the adaptive killer locks Reno into RTO "
              "backoff at a tiny average attack rate; open-loop bursts "
              "degrade it less per attack byte.\n");
  return 0;
}
