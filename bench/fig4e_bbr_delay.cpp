// Figure 4e: a traffic vector inducing high queueing delay in BBR — fill
// the queue just before BBR starts (hiding the true min RTT) and keep
// refilling it. Prints the per-packet queueing delay of the BBR flow and of
// the cross traffic over time.
#include <cstdio>
#include <iostream>

#include "analysis/flow_metrics.h"
#include "bench/bench_util.h"
#include "cca/registry.h"
#include "scenario/crafted.h"
#include "scenario/runner.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace ccfuzz;

int main() {
  bench::banner("Figure 4e", "traffic vector inducing high BBR delay");
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(5);
  cfg.flow_start = TimeNs::millis(200);
  cfg.net.queue_capacity = 50;
  cfg.record_mode = scenario::RecordMode::kFullEvents;  // figure reads events

  const auto trace = scenario::crafted::standing_queue_trace(
      cfg.flow_start, cfg.net.queue_capacity, DurationNs::millis(2), 1,
      cfg.duration);
  const auto attacked =
      scenario::run_scenario(cfg, cca::make_factory("bbr"), trace);
  const auto clean = scenario::run_scenario(cfg, cca::make_factory("bbr"), {});

  const auto bbr_delay = analysis::delay_series(attacked, net::FlowId::kCcaData);
  const auto cross_delay =
      analysis::delay_series(attacked, net::FlowId::kCrossTraffic);

  CsvWriter csv(std::cout, {"series", "time_s", "queue_delay_ms"});
  for (std::size_t i = 0; i < bbr_delay.time_s.size(); ++i) {
    csv.row("bbr", {bbr_delay.time_s[i], bbr_delay.delay_ms[i]});
  }
  for (std::size_t i = 0; i < cross_delay.time_s.size(); ++i) {
    csv.row("cross", {cross_delay.time_s[i], cross_delay.delay_ms[i]});
  }

  const auto attacked_delays = attacked.cca_queue_delays_s();
  const auto clean_delays = clean.cca_queue_delays_s();
  std::printf("# summary: p10 delay attacked=%.1f ms clean=%.1f ms "
              "(score function: 10th-percentile delay)\n",
              percentile(attacked_delays, 10) * 1e3,
              percentile(clean_delays, 10) * 1e3);
  return 0;
}
