// Shared helpers for the figure benches.
//
// Every figure harness prints CSV to stdout so the paper's plots can be
// regenerated with any plotting tool. GA sizes are environment-tunable:
// defaults keep `for b in build/bench/*` minutes-scale; paper-scale runs
// set CCFUZZ_POP=500 CCFUZZ_ISLANDS=20 CCFUZZ_GENERATIONS=40.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ccfuzz::bench {

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return end != v ? parsed : fallback;
}

/// Prints the standard bench banner with scaling hints.
inline void banner(const char* figure, const char* what) {
  std::printf("# %s — %s\n", figure, what);
  std::printf("# scale with CCFUZZ_POP / CCFUZZ_ISLANDS / CCFUZZ_GENERATIONS "
              "(paper: 500 / 20 / ~40)\n");
}

}  // namespace ccfuzz::bench
