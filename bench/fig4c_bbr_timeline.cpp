// Figure 4c: timeline of the events that trigger the BBR stall — RTO,
// spurious retransmissions, late SACKs ending probe rounds prematurely, and
// the bandwidth filter decaying.
#include <cstdio>
#include <iostream>

#include "analysis/timeline.h"
#include "bench/bench_util.h"
#include "cca/registry.h"
#include "scenario/crafted.h"

using namespace ccfuzz;

int main() {
  bench::banner("Figure 4c", "timeline of the BBR stall mechanism");
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(8);
  cfg.net.queue_capacity = 50;
  cfg.receive_window_segments = 2000;

  const auto crafted = scenario::crafted::craft_retransmission_killer(
      cfg, cca::make_factory("bbr"));
  const auto& run = crafted.final_run;
  const auto d = analysis::stall_diagnostics(run.tcp_log());
  std::printf("# pinned head seq=%lld; rtos=%lld spurious_retx=%lld "
              "premature_round_ends=%lld bw_filter_drops=%lld\n",
              static_cast<long long>(crafted.pinned_seq),
              static_cast<long long>(d.rtos),
              static_cast<long long>(d.spurious_retx),
              static_cast<long long>(d.probe_round_ends),
              static_cast<long long>(d.bw_filter_drops));

  // Find the first RTO and print the window around it (the Fig 4c story).
  TimeNs rto_time = TimeNs::zero();
  for (const auto& ev : run.tcp_log().events()) {
    if (ev.type == tcp::TcpEventType::kRto) {
      rto_time = ev.time;
      break;
    }
  }
  analysis::TimelineOptions opt;
  opt.from = rto_time - DurationNs::millis(20);
  opt.to = rto_time + DurationNs::millis(120);
  opt.diagnostics_only = true;
  opt.max_rows = static_cast<std::size_t>(bench::env_long("CCFUZZ_ROWS", 80));
  std::printf("# events around the first RTO (t=%.3f s):\n",
              rto_time.to_seconds());
  analysis::print_timeline(std::cout, run.tcp_log(), opt);
  return 0;
}
