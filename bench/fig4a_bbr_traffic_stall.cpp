// Figure 4a: a cross-traffic trace that causes BBR to get stuck.
// Prints ingress/egress/traffic/link-rate series (Mbps vs time) for the
// deterministic retransmission-killer trace, plus the stall summary.
#include <cstdio>
#include <iostream>

#include "analysis/flow_metrics.h"
#include "analysis/timeline.h"
#include "bench/bench_util.h"
#include "cca/registry.h"
#include "scenario/crafted.h"
#include "util/csv.h"

using namespace ccfuzz;

int main() {
  bench::banner("Figure 4a", "traffic trace that sticks BBR");
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(
      bench::env_long("CCFUZZ_DURATION_S", 8));
  cfg.net.queue_capacity = 50;
  cfg.receive_window_segments = 2000;  // Linux-scale buffers (see DESIGN.md)

  const auto crafted = scenario::crafted::craft_retransmission_killer(
      cfg, cca::make_factory("bbr"));
  const auto& run = crafted.final_run;

  const DurationNs w = DurationNs::millis(100);
  const auto ingress =
      analysis::rate_series(run, analysis::Stream::kIngress,
                            net::FlowId::kCcaData, w);
  const auto egress = analysis::rate_series(
      run, analysis::Stream::kEgress, net::FlowId::kCcaData, w);
  const auto traffic = analysis::rate_series(
      run, analysis::Stream::kIngress, net::FlowId::kCrossTraffic, w);
  const auto link = analysis::link_rate_series(run, crafted.trace, w);

  CsvWriter csv(std::cout,
                {"time_s", "ingress_mbps", "egress_mbps", "traffic_mbps",
                 "link_mbps"});
  for (std::size_t i = 0; i < egress.time_s.size(); ++i) {
    csv.row({egress.time_s[i], ingress.mbps[i], egress.mbps[i],
             traffic.mbps[i], link.mbps[i]});
  }

  const auto d = analysis::stall_diagnostics(run.tcp_log());
  std::printf(
      "# summary: goodput=%.2f Mbps stalled=%d cross_packets=%lld bursts=%d "
      "rtos=%lld spurious_retx=%lld premature_round_ends=%lld\n",
      run.goodput_mbps(), run.stalled(DurationNs::seconds(2)) ? 1 : 0,
      static_cast<long long>(run.cross_sent), crafted.bursts,
      static_cast<long long>(d.rtos),
      static_cast<long long>(d.spurious_retx),
      static_cast<long long>(d.probe_round_ends));
  return 0;
}
