// Finding §4.1: the BBR permanent stall, compared across BBR variants and
// loss-based CCAs on the same crafted trace.
#include <cstdio>
#include <iostream>

#include "analysis/timeline.h"
#include "bench/bench_util.h"
#include "campaign/panel.h"
#include "cca/registry.h"
#include "scenario/crafted.h"
#include "util/csv.h"

using namespace ccfuzz;

int main() {
  bench::banner("Finding 4.1", "BBR permanent stall — cross-CCA comparison");
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(12);
  cfg.net.queue_capacity = 50;
  cfg.receive_window_segments = 2000;

  const auto crafted = scenario::crafted::craft_retransmission_killer(
      cfg, cca::make_factory("bbr"));
  std::printf("# killer trace: %zu cross packets in %d bursts "
              "(~%.2f Mbps average attack rate)\n",
              crafted.trace.size(), crafted.bursts,
              static_cast<double>(crafted.trace.size()) * 1500 * 8 /
                  cfg.duration.to_seconds() * 1e-6);

  CsvWriter csv(std::cout, {"cca", "goodput_mbps", "stalled", "rtos",
                            "spurious_retx", "premature_round_ends"});
  const auto panel = campaign::evaluate_panel(
      cfg, {"bbr", "bbr-probertt-on-rto", "bbr-linux-strict", "reno", "cubic"},
      crafted.trace);
  for (const auto& row : panel) {
    const auto& run = row.run;
    const auto d = analysis::stall_diagnostics(run.tcp_log());
    csv.row(row.label, {run.goodput_mbps(),
                        run.stalled(DurationNs::seconds(2)) ? 1.0 : 0.0,
                        static_cast<double>(d.rtos),
                        static_cast<double>(d.spurious_retx),
                        static_cast<double>(d.probe_round_ends)});
  }
  std::printf("# shape check: bbr stalls (goodput < 3); reno survives the "
              "same trace.\n");
  return 0;
}
