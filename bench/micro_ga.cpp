// Micro-benchmarks for the GA machinery: trace evolution operators and a
// full generation step (evaluation dominates; operators must be noise).
#include <benchmark/benchmark.h>

#include <memory>

#include "campaign/campaign.h"
#include "fuzz/fuzzer.h"
#include "fuzz/selection.h"

using namespace ccfuzz;

namespace {

trace::TrafficTraceModel traffic_model() {
  trace::TrafficTraceModel m;
  m.max_packets = 3000;
  m.duration = TimeNs::seconds(5);
  return m;
}

void BM_TrafficMutation(benchmark::State& state) {
  const auto model = traffic_model();
  Rng rng(3);
  trace::Trace t = model.generate(rng);
  for (auto _ : state) {
    t = model.mutate(t, rng);
    benchmark::DoNotOptimize(t.stamps.data());
  }
}
BENCHMARK(BM_TrafficMutation);

void BM_TrafficCrossover(benchmark::State& state) {
  const auto model = traffic_model();
  Rng rng(5);
  const trace::Trace a = model.generate(rng);
  const trace::Trace b = model.generate(rng);
  for (auto _ : state) {
    auto child = model.crossover(a, b, rng);
    benchmark::DoNotOptimize(child.stamps.data());
  }
}
BENCHMARK(BM_TrafficCrossover);

void BM_RankSelection(benchmark::State& state) {
  fuzz::RankSelector sel(500);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.pick(rng));
  }
}
BENCHMARK(BM_RankSelection);

void BM_EvaluateBatch(benchmark::State& state) {
  // The number the GA actually pays per member: mutate a genome, run the
  // 2 s simulation on the warm thread context, score it and summarize —
  // serial, so the per-evaluation cost is visible (the campaign scheduler
  // fans the same work out over the pool). Steady state allocates nothing
  // (tests/sim/steady_state_alloc_test.cpp pins that).
  constexpr std::size_t kBatch = 8;
  const auto model = traffic_model();
  campaign::CellConfig cell;
  cell.cca = "reno";
  cell.scenario.duration = TimeNs::seconds(2);
  const fuzz::TraceEvaluator evaluator = campaign::make_evaluator(cell);

  Rng rng(13);
  std::vector<trace::Trace> traces;
  traces.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) traces.push_back(model.generate(rng));
  std::vector<fuzz::Evaluation> out(kBatch);
  std::vector<fuzz::BatchItem> items(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    items[i] = {&evaluator, &traces[i], &out[i]};
  }

  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      traces[i] = model.mutate(traces[i], rng);
    }
    fuzz::evaluate_batch(items, /*parallel=*/false);
    benchmark::DoNotOptimize(out.front().score.performance);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EvaluateBatch)->Unit(benchmark::kMillisecond);

void BM_FuzzerGeneration(benchmark::State& state) {
  // One full GA generation (24 members, 2 s simulations, parallel).
  campaign::CellConfig cell;
  cell.cca = "reno";
  cell.scenario.duration = TimeNs::seconds(2);
  cell.traffic_model = traffic_model();
  cell.ga.population = 24;
  cell.ga.islands = 3;
  cell.ga.seed = 11;
  for (auto _ : state) {
    fuzz::Fuzzer fuzzer(cell.ga, campaign::make_trace_model(cell),
                        campaign::make_evaluator(cell));
    benchmark::DoNotOptimize(fuzzer.step().best_score);
  }
}
BENCHMARK(BM_FuzzerGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
