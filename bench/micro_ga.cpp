// Micro-benchmarks for the GA machinery: trace evolution operators and a
// full generation step (evaluation dominates; operators must be noise).
#include <benchmark/benchmark.h>

#include <memory>

#include "campaign/campaign.h"
#include "fuzz/elite_archive.h"
#include "fuzz/fuzzer.h"
#include "fuzz/selection.h"

using namespace ccfuzz;

namespace {

trace::TrafficTraceModel traffic_model() {
  trace::TrafficTraceModel m;
  m.max_packets = 3000;
  m.duration = TimeNs::seconds(5);
  return m;
}

void BM_TrafficMutation(benchmark::State& state) {
  const auto model = traffic_model();
  Rng rng(3);
  trace::Trace t = model.generate(rng);
  for (auto _ : state) {
    t = model.mutate(t, rng);
    benchmark::DoNotOptimize(t.stamps.data());
  }
}
BENCHMARK(BM_TrafficMutation);

void BM_TrafficCrossover(benchmark::State& state) {
  const auto model = traffic_model();
  Rng rng(5);
  const trace::Trace a = model.generate(rng);
  const trace::Trace b = model.generate(rng);
  for (auto _ : state) {
    auto child = model.crossover(a, b, rng);
    benchmark::DoNotOptimize(child.stamps.data());
  }
}
BENCHMARK(BM_TrafficCrossover);

void BM_RankSelection(benchmark::State& state) {
  fuzz::RankSelector sel(500);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.pick(rng));
  }
}
BENCHMARK(BM_RankSelection);

void BM_EvaluateBatch(benchmark::State& state) {
  // The number the GA actually pays per member: mutate a genome, run the
  // 2 s simulation on the warm thread context, score it and summarize —
  // serial, so the per-evaluation cost is visible (the campaign scheduler
  // fans the same work out over the pool). Steady state allocates nothing
  // (tests/sim/steady_state_alloc_test.cpp pins that).
  constexpr std::size_t kBatch = 8;
  const auto model = traffic_model();
  campaign::CellConfig cell;
  cell.cca = "reno";
  cell.scenario.duration = TimeNs::seconds(2);
  const fuzz::TraceEvaluator evaluator = campaign::make_evaluator(cell);

  Rng rng(13);
  std::vector<trace::Trace> traces;
  traces.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) traces.push_back(model.generate(rng));
  std::vector<fuzz::Evaluation> out(kBatch);
  std::vector<fuzz::BatchItem> items(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    items[i] = {&evaluator, &traces[i], &out[i]};
  }

  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      traces[i] = model.mutate(traces[i], rng);
    }
    fuzz::evaluate_batch(items, /*parallel=*/false);
    benchmark::DoNotOptimize(out.front().score.performance);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EvaluateBatch)->Unit(benchmark::kMillisecond);

void BM_EliteArchive(benchmark::State& state) {
  // Warm-archive insert throughput on the worst-case path: synthetic
  // signatures spread across many lattice cells, and every offer strictly
  // outscores the incumbent so each insert pays the full union-map merge
  // plus genome/eval copy-assign into the cell (zero allocations once the
  // genome high-water mark is reached — the steady-state test pins that).
  constexpr std::size_t kPool = 256;
  const auto model = traffic_model();
  Rng rng(17);
  std::vector<trace::Trace> genomes;
  genomes.reserve(kPool);
  std::vector<fuzz::Evaluation> evals(kPool);
  for (std::size_t i = 0; i < kPool; ++i) {
    genomes.push_back(model.generate(rng));
    fuzz::Evaluation& e = evals[i];
    auto& sig = e.coverage;
    sig.valid = true;
    sig.descriptor.state_transitions = static_cast<std::uint8_t>(i % 16);
    sig.descriptor.rtt_spread = static_cast<std::uint8_t>((i / 16) % 16);
    sig.descriptor.max_backoff = static_cast<std::uint8_t>(i % 5);
    sig.descriptor.cwnd_span = static_cast<std::uint8_t>((i * 7) % 16);
    for (std::size_t k = 0; k < 32; ++k) {
      sig.bitmap.set((i * 37 + k * 59) % coverage::CoverageBitmap::kBits);
    }
    sig.bits = sig.bitmap.count();
  }

  fuzz::EliteArchive archive;
  for (std::size_t i = 0; i < kPool; ++i) archive.insert(genomes[i], evals[i]);

  for (auto _ : state) {
    for (std::size_t i = 0; i < kPool; ++i) {
      evals[i].score.performance += 1.0;  // strict improvement every offer
      benchmark::DoNotOptimize(archive.insert(genomes[i], evals[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() * kPool);
}
BENCHMARK(BM_EliteArchive);

void BM_FuzzerGeneration(benchmark::State& state) {
  // One full GA generation (24 members, 2 s simulations, parallel).
  campaign::CellConfig cell;
  cell.cca = "reno";
  cell.scenario.duration = TimeNs::seconds(2);
  cell.traffic_model = traffic_model();
  cell.ga.population = 24;
  cell.ga.islands = 3;
  cell.ga.seed = 11;
  for (auto _ : state) {
    fuzz::Fuzzer fuzzer(cell.ga, campaign::make_trace_model(cell),
                        campaign::make_evaluator(cell));
    benchmark::DoNotOptimize(fuzzer.step().best_score);
  }
}
BENCHMARK(BM_FuzzerGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
