// Figure 5: realism scoring (future work §5) — unconstrained DistPackets
// curves accepted/rejected by aggregate multi-CCA performance. Prints each
// trace's cumulative curve tagged with the verdict.
#include <cstdio>
#include <iostream>

#include "analysis/realism.h"
#include "bench/bench_util.h"
#include "cca/registry.h"
#include "trace/dist_packets.h"
#include "util/csv.h"

using namespace ccfuzz;

int main() {
  bench::banner("Figure 5", "realism scoring of unconstrained traces");
  const int n_traces = static_cast<int>(bench::env_long("CCFUZZ_CURVES", 12));

  analysis::RealismScorer::Config rcfg;
  rcfg.scenario.duration = TimeNs::seconds(5);
  rcfg.accept_threshold = 0.5;
  std::vector<std::pair<std::string, tcp::CcaFactory>> panel;
  for (const char* name : {"reno", "cubic", "bbr"}) {
    panel.emplace_back(name, cca::make_factory(name));
  }
  analysis::RealismScorer scorer(rcfg, std::move(panel));

  // Fig 5 scores traces generated WITHOUT the local rate constraints; the
  // smoother half of that pool should be accepted and the famine/feast
  // half rejected. Alternate fully-unconstrained and sub-kAgg-only
  // relaxation to cover the spectrum the paper's figure shows.
  CsvWriter csv(std::cout,
                {"trace", "accepted", "score", "time_ms", "packet_count"});
  int accepted = 0;
  for (int c = 0; c < n_traces; ++c) {
    Rng rng(7000 + static_cast<std::uint64_t>(c));
    trace::DistPacketsConfig dcfg;
    dcfg.rate_constraints = (c % 2) == 1;
    trace::Trace t;
    t.kind = trace::TraceKind::kLink;
    t.duration = TimeNs::seconds(5);
    t.stamps =
        trace::dist_packets(5000, TimeNs::zero(), t.duration, rng, dcfg);
    const auto verdict = scorer.score(t);
    accepted += verdict.accepted ? 1 : 0;
    std::size_t i = 0;
    for (std::int64_t ms = 0; ms <= 5000; ms += 100) {
      while (i < t.stamps.size() && t.stamps[i] <= TimeNs::millis(ms)) ++i;
      csv.row({static_cast<double>(c), verdict.accepted ? 1.0 : 0.0,
               verdict.score, static_cast<double>(ms),
               static_cast<double>(i)});
    }
  }
  std::printf("# summary: %d/%d traces accepted at threshold %.2f\n",
              accepted, n_traces, rcfg.accept_threshold);
  std::printf("# shape check: rejected traces are the famine-then-feast "
              "shapes; near-uniform ones are accepted.\n");
  return 0;
}
