// Coverage-guided fuzzing (MAP-Elites over behavior descriptors) vs classic
// score-only search, on the same evaluation budget.
//
//   ./fuzz_coverage [output-dir] [generations] [population]
//
// Both searches fuzz reno in traffic mode with the behavior probe armed, so
// their archives are directly comparable: every evaluated member is offered
// to a 4-dimensional behavior grid (CCA state transitions × RTT spread ×
// RTO backoff × cwnd span) that keeps the best-scoring trace per cell.
// Score-only search breeds from rank selection and tends to converge onto
// one behavioral niche; MAP-Elites breeds from the archive and keeps every
// discovered behavior alive, so it fills more cells on the same budget.
//
// The MAP-Elites archive is then saved, reloaded, and resumed with a fresh
// population — the cross-campaign workflow CampaignConfig::resume_dir
// automates — to show cell occupancy continuing from where it left off.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "campaign/campaign.h"
#include "fuzz/elite_archive.h"
#include "fuzz/fuzzer.h"
#include "fuzz/score.h"

using namespace ccfuzz;

namespace {

campaign::CellConfig base_cell(int population, int generations) {
  campaign::CellConfig cell;
  cell.cca = "reno";
  cell.scenario.duration = TimeNs::seconds(2);
  cell.scenario.coverage = true;  // arm the behavior probe
  cell.score = std::make_shared<fuzz::LowUtilizationScore>();
  cell.trace_weights = {.per_packet = 1e-4, .per_drop = 1e-3};
  cell.traffic_model.max_packets = 1500;
  cell.ga.population = population;
  cell.ga.islands = 4;
  cell.ga.max_generations = generations;
  cell.ga.seed = 7;
  return cell;
}

fuzz::Fuzzer make_fuzzer(const campaign::CellConfig& cell) {
  return fuzz::Fuzzer(cell.ga, campaign::make_trace_model(cell),
                      campaign::make_evaluator(cell));
}

void print_history(const char* label, const std::vector<fuzz::GenStats>& h) {
  for (const auto& gs : h) {
    std::printf("[%-10s] gen %2d  best=%8.3f  cells=%4lld (+%lld)  bits=%lld\n",
                label, gs.generation, gs.best_score,
                static_cast<long long>(gs.archive_cells),
                static_cast<long long>(gs.archive_new_cells),
                static_cast<long long>(gs.coverage_bits));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "coverage_out";
  const int generations = argc > 2 ? std::atoi(argv[2]) : 10;
  const int population = argc > 3 ? std::atoi(argv[3]) : 64;
  if (generations < 1 || population < 2) {
    std::fprintf(stderr,
                 "usage: fuzz_coverage [output-dir] [generations>=1] "
                 "[population>=2]\n");
    return 1;
  }

  // A/B on the same budget, same seed, same initial population: only the
  // parent-selection strategy differs.
  campaign::CellConfig score_cell = base_cell(population, generations);
  campaign::CellConfig elites_cell = score_cell;
  elites_cell.ga.search = fuzz::SearchMode::kMapElites;
  // Rank members that light up fresh union-coverage bits above equal
  // scorers: the other half of coverage-guided selection.
  elites_cell.ga.novelty_bonus = 0.01;

  std::printf("score-only search (%d gens x %d pop):\n", generations,
              population);
  fuzz::Fuzzer score_only = make_fuzzer(score_cell);
  print_history("score", score_only.run());

  std::printf("\nmap-elites search (same budget):\n");
  fuzz::Fuzzer map_elites = make_fuzzer(elites_cell);
  print_history("map-elites", map_elites.run());

  const std::size_t score_cells = score_only.archive()->filled();
  const std::size_t elite_cells = map_elites.archive()->filled();
  std::printf("\n%-12s %8s %8s %10s\n", "search", "cells", "bits", "best");
  std::printf("%-12s %8zu %8u %10.3f\n", "score", score_cells,
              score_only.archive()->union_bits(),
              score_only.best().eval.score.total());
  std::printf("%-12s %8zu %8u %10.3f\n", "map-elites", elite_cells,
              map_elites.archive()->union_bits(),
              map_elites.best().eval.score.total());
  std::printf("map-elites filled %+lld cells vs score-only\n",
              static_cast<long long>(elite_cells) -
                  static_cast<long long>(score_cells));

  // Persist, reload, resume: a fresh population keeps filling the archived
  // behavior space instead of rediscovering it.
  std::filesystem::create_directories(out_dir);
  const std::string archive_path = out_dir + "/archive.txt";
  map_elites.archive()->save_file(archive_path);
  std::printf("\narchive saved to %s (%zu cells)\n", archive_path.c_str(),
              elite_cells);

  campaign::CellConfig resumed_cell = elites_cell;
  resumed_cell.ga.seed = 1234;  // a brand-new population
  resumed_cell.ga.max_generations = std::max(2, generations / 2);
  fuzz::Fuzzer resumed = make_fuzzer(resumed_cell);
  resumed.seed_archive(fuzz::EliteArchive::load_file(archive_path));
  std::printf("resumed with a fresh population (seed %llu):\n",
              static_cast<unsigned long long>(resumed_cell.ga.seed));
  print_history("resumed", resumed.run());
  std::printf("resume: %zu -> %zu cells\n", elite_cells,
              resumed.archive()->filled());
  resumed.archive()->save_file(archive_path);

  return elite_cells > score_cells ? 0 : 2;
}
