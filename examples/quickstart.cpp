// Quickstart: simulate one congestion control algorithm over the paper's
// dumbbell and print a run summary.
//
//   ./quickstart [cca] [cross_packets]
//
// cca is any registry name (reno, cubic, cubic-ns3bug, bbr,
// bbr-linux-strict, bbr-probertt-on-rto).
#include <cstdio>
#include <string>

#include "cca/registry.h"
#include "scenario/runner.h"
#include "trace/dist_packets.h"

using namespace ccfuzz;

int main(int argc, char** argv) {
  const std::string cca_name = argc > 1 ? argv[1] : "bbr";
  const std::int64_t cross = argc > 2 ? std::atoll(argv[2]) : 0;
  if (!cca::is_known_cca(cca_name)) {
    std::fprintf(stderr, "unknown cca '%s'; known:", cca_name.c_str());
    for (const auto& n : cca::known_ccas()) std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  // The paper's setup: 12 Mbps bottleneck, 20 ms propagation, drop-tail
  // FIFO, SACK + delayed ACKs, min-RTO 1 s.
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(5);

  // Optional cross traffic: `cross` packets spread over the run with the
  // paper's DistPackets generator (no rate constraints, like traffic mode).
  std::vector<TimeNs> trace;
  if (cross > 0) {
    Rng rng(42);
    trace::DistPacketsConfig dcfg;
    dcfg.rate_constraints = false;
    trace = trace::dist_packets(cross, TimeNs::zero(), cfg.duration, rng, dcfg);
  }

  const auto run =
      scenario::run_scenario(cfg, cca::make_factory(cca_name), trace);

  std::printf("%s over 12 Mbps / 20 ms dumbbell for %.0f s\n",
              cca_name.c_str(), cfg.duration.to_seconds());
  std::printf("  goodput:          %6.2f Mbps\n", run.goodput_mbps());
  std::printf("  segments sent:    %6lld (%lld retransmissions)\n",
              static_cast<long long>(run.cca_sent),
              static_cast<long long>(run.cca_retransmissions));
  std::printf("  drops at queue:   %6lld\n",
              static_cast<long long>(run.cca_drops));
  std::printf("  RTOs:             %6lld\n",
              static_cast<long long>(run.rto_count));
  if (cross > 0) {
    std::printf("  cross traffic:    %6lld sent, %lld dropped\n",
                static_cast<long long>(run.cross_sent),
                static_cast<long long>(run.cross_drops));
  }
  const auto delays = run.cca_queue_delays_s();
  double max_delay = 0;
  for (double d : delays) max_delay = std::max(max_delay, d);
  std::printf("  max queue delay:  %6.1f ms\n", max_delay * 1e3);
  std::printf("  stalled at end:   %s\n",
              run.stalled(DurationNs::seconds(1)) ? "YES" : "no");
  return 0;
}
