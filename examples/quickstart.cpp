// Quickstart: a full fuzzing campaign in ~20 lines — three CCAs, both fuzz
// modes (link service curves and cross-traffic schedules), one shared GA
// budget, with per-cell winners and progress history written as CSV/JSON.
//
//   ./quickstart [output-dir] [generations] [population]
//
// The default budget is demo-scale (seconds of wall clock); the paper's
// scale is population 500, 20 islands, ~40 generations.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "campaign/campaign.h"

using namespace ccfuzz;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "campaign_out";
  const int generations = argc > 2 ? std::atoi(argv[2]) : 4;
  const int population = argc > 3 ? std::atoi(argv[3]) : 24;
  if (generations < 1 || population < 2) {
    std::fprintf(stderr,
                 "usage: quickstart [output-dir] [generations>=1] "
                 "[population>=2]\n");
    return 1;
  }

  // The paper's dumbbell: 12 Mbps bottleneck, 20 ms propagation, drop-tail
  // FIFO, SACK + delayed ACKs, min-RTO 1 s.
  scenario::ScenarioConfig dumbbell;
  dumbbell.duration = TimeNs::seconds(3);

  fuzz::GaConfig ga;
  ga.population = population;
  ga.islands = 3;
  ga.max_generations = generations;
  ga.seed = 42;

  campaign::CampaignConfig cfg;
  cfg.ccas({"bbr", "cubic", "reno"})
      .modes({scenario::FuzzMode::kTraffic, scenario::FuzzMode::kLink})
      .base_scenario(dumbbell)
      .score(std::make_shared<fuzz::LowUtilizationScore>(),
             {.per_packet = 1e-4, .per_drop = 1e-3})
      .ga(ga)
      .winners(3)
      .output_dir(out_dir);

  campaign::Campaign c(cfg);
  campaign::ConsoleObserver console;
  c.add_observer(&console);
  const auto& report = c.run();

  std::printf("\n%-28s %12s %10s %8s %6s\n", "cell", "best score",
              "goodput", "sims", "hits");
  for (const auto& cell : report.cells) {
    const double goodput =
        cell.winners.empty() ? 0.0 : cell.winners.front().eval.goodput_mbps;
    std::printf("%-28s %12.3f %7.2f Mb %8lld %6lld\n", cell.cell.name.c_str(),
                cell.best_score(), goodput,
                static_cast<long long>(cell.simulations),
                static_cast<long long>(cell.cache_hits));
  }
  std::printf(
      "\nreport: %s/summary.{csv,json}; per-cell history.csv and winner "
      "traces (replay with examples/replay_trace)\n",
      out_dir.c_str());
  return 0;
}
