// A crash-safe campaign driver: checkpoint every generation, resume from the
// same directory, shut down gracefully on SIGINT/SIGTERM.
//
//   ./crashsafe_campaign <output-dir> [generations] [population] [throttle-ms]
//
// Run it, kill it (Ctrl-C, SIGTERM, or even SIGKILL mid-generation), run the
// exact same command again: the campaign continues from the last checkpoint
// and finishes with a report tree bit-identical to an uninterrupted run.
// On SIGINT/SIGTERM the driver finishes the in-flight batch, writes a final
// checkpoint, flushes the JSONL progress log, and exits 0.
//
// `throttle-ms` pauses after every lockstep generation — it exists so the
// kill-and-resume integration test can reliably interrupt a run mid-campaign;
// leave it 0 for real use.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "campaign/campaign.h"
#include "fuzz/score.h"
#include "scenario/config.h"
#include "util/time.h"

using namespace ccfuzz;

namespace {

/// Slows the lockstep loop down so an external killer can hit mid-campaign.
class ThrottleObserver final : public campaign::CampaignObserver {
 public:
  explicit ThrottleObserver(int ms) : ms_(ms) {}
  void on_generation(const campaign::CellConfig&,
                     const fuzz::GenStats&) override {
    if (ms_ > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
  }

 private:
  int ms_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: crashsafe_campaign <output-dir> [generations>=1] "
                 "[population>=2] [throttle-ms]\n");
    return 1;
  }
  const std::string out_dir = argv[1];
  const int generations = argc > 2 ? std::atoi(argv[2]) : 6;
  const int population = argc > 3 ? std::atoi(argv[3]) : 24;
  const int throttle_ms = argc > 4 ? std::atoi(argv[4]) : 0;
  if (generations < 1 || population < 2) {
    std::fprintf(stderr, "bad generations/population\n");
    return 1;
  }

  campaign::install_stop_signal_handlers();

  // Run guards: a runaway scenario truncates into a flagged RunResult
  // instead of hanging the campaign.
  scenario::ScenarioConfig sc;
  sc.duration = TimeNs::seconds(2);
  sc.budget.max_events = 50'000'000;

  fuzz::GaConfig ga;
  ga.population = population;
  ga.islands = 2;
  ga.max_generations = generations;
  ga.seed = 11;

  campaign::CampaignConfig cfg;
  cfg.ccas({"reno", "cubic"})
      .modes({scenario::FuzzMode::kTraffic})
      .base_scenario(sc)
      .score(std::make_shared<fuzz::LowUtilizationScore>())
      .ga(ga)
      .winners(3)
      .output_dir(out_dir)
      .resume_dir(out_dir)       // continue from our own checkpoint
      .checkpoint_every(1);      // snapshot after every lockstep generation

  campaign::Campaign c(cfg);
  std::printf("campaign %s (checkpointing to %s/checkpoint)\n",
              c.resumed() ? "RESUMED from checkpoint" : "starting fresh",
              out_dir.c_str());

  campaign::ConsoleObserver console;
  std::filesystem::create_directories(out_dir);
  campaign::JsonlObserver jsonl(out_dir + "/progress.jsonl", /*sync=*/true);
  ThrottleObserver throttle(throttle_ms);
  c.add_observer(&console);
  c.add_observer(&jsonl);
  c.add_observer(&throttle);

  const campaign::CampaignReport& report = c.run();
  if (report.interrupted) {
    std::printf("interrupted: state checkpointed, rerun to resume\n");
  } else {
    std::printf("complete: %zu cells reported to %s\n", report.cells.size(),
                out_dir.c_str());
  }
  return 0;
}
