// Replay a saved adversarial trace against any CCA and print a diagnostic
// timeline — the workflow for debugging what the fuzzer found.
//
//   ./replay_trace <trace-file> [cca]
#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/timeline.h"
#include "campaign/panel.h"
#include "trace/trace_io.h"

using namespace ccfuzz;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace-file> [cca]\n", argv[0]);
    return 1;
  }
  const std::string cca_name = argc > 2 ? argv[2] : "bbr";
  const trace::Trace t = trace::load_trace(argv[1]);

  scenario::ScenarioConfig cfg;
  cfg.mode = t.kind == trace::TraceKind::kLink ? scenario::FuzzMode::kLink
                                               : scenario::FuzzMode::kTraffic;
  cfg.duration = t.duration;
  cfg.log_tcp_events = true;

  const auto rows = campaign::evaluate_panel(cfg, {cca_name}, t.stamps);
  const auto& run = rows.front().run;
  std::printf("%s vs %s trace (%zu stamps, %.1f s): goodput %.2f Mbps, "
              "%lld RTOs, stalled=%s\n",
              cca_name.c_str(),
              t.kind == trace::TraceKind::kLink ? "link" : "traffic",
              t.size(), t.duration.to_seconds(), run.goodput_mbps(),
              static_cast<long long>(run.rto_count()),
              run.stalled(DurationNs::seconds(1)) ? "yes" : "no");

  analysis::TimelineOptions opt;
  opt.diagnostics_only = true;
  opt.max_rows = 60;
  std::printf("--- diagnostic timeline (first %zu rows) ---\n", opt.max_rows);
  analysis::print_timeline(std::cout, run.tcp_log(), opt);
  return 0;
}
