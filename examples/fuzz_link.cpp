// Link fuzzing (paper §3.2): evolve a bottleneck service curve (fixed
// packet budget = fixed average bandwidth) that hurts the chosen CCA.
// Demonstrates trace annealing, which smooths irrelevant link variation so
// the adversarial structure stands out.
//
//   ./fuzz_link [cca]
#include <cstdio>
#include <memory>
#include <string>

#include "cca/registry.h"
#include "fuzz/fuzzer.h"

using namespace ccfuzz;

int main(int argc, char** argv) {
  const std::string cca_name = argc > 1 ? argv[1] : "reno";

  scenario::ScenarioConfig scfg;
  scfg.mode = scenario::FuzzMode::kLink;
  scfg.duration = TimeNs::seconds(5);

  trace::LinkTraceModel lm;
  lm.total_packets = 5000;  // pins the average bandwidth at 12 Mbps
  lm.duration = scfg.duration;
  lm.dist.k_agg = DurationNs::millis(50);

  fuzz::GaConfig gcfg;
  gcfg.population = 48;
  gcfg.islands = 4;
  gcfg.max_generations = 8;
  gcfg.anneal = true;  // §3.2's optional Gaussian smoothing
  gcfg.anneal_cfg.sigma = 2.0;
  gcfg.anneal_cfg.strength = 0.3;
  gcfg.seed = 2;

  fuzz::TraceEvaluator evaluator(scfg, cca::make_factory(cca_name),
                                 std::make_shared<fuzz::LowUtilizationScore>());
  fuzz::Fuzzer fuzzer(gcfg, std::make_shared<fuzz::LinkModel>(lm), evaluator);

  std::printf("link-fuzzing %s: evolving a 12 Mbps-average service curve "
              "(no crossover in link mode)\n",
              cca_name.c_str());
  for (int g = 0; g < gcfg.max_generations; ++g) {
    const auto gs = fuzzer.step();
    std::printf("gen %2d  best=%8.3f  mean=%8.3f  top20 goodput=%5.2f Mbps\n",
                gs.generation, gs.best_score, gs.mean_score,
                gs.topk_mean_goodput_mbps);
  }
  const auto& best = fuzzer.best();
  std::printf("\nbest link trace drives %s to %.2f Mbps goodput "
              "(offered average: 12 Mbps)\n",
              cca_name.c_str(), best.eval.goodput_mbps);
  return 0;
}
