// Link fuzzing (paper §3.2): a single-cell campaign evolving a bottleneck
// service curve (fixed packet budget = fixed average bandwidth) that hurts
// the chosen CCA. Demonstrates trace annealing, which smooths irrelevant
// link variation so the adversarial structure stands out.
//
//   ./fuzz_link [cca]
#include <cstdio>
#include <memory>
#include <string>

#include "campaign/campaign.h"

using namespace ccfuzz;

int main(int argc, char** argv) {
  const std::string cca_name = argc > 1 ? argv[1] : "reno";

  campaign::CellConfig cell;
  cell.cca = cca_name;
  cell.scenario.mode = scenario::FuzzMode::kLink;
  cell.scenario.duration = TimeNs::seconds(5);
  // total_packets stays -1: the campaign derives the budget pinning the
  // scenario's 12 Mbps average bandwidth (5000 packets over 5 s).
  cell.link_model.dist.k_agg = DurationNs::millis(50);
  cell.ga.population = 48;
  cell.ga.islands = 4;
  cell.ga.max_generations = 8;
  cell.ga.anneal = true;  // §3.2's optional Gaussian smoothing
  cell.ga.anneal_cfg.sigma = 2.0;
  cell.ga.anneal_cfg.strength = 0.3;
  cell.ga.seed = 2;

  std::printf("link-fuzzing %s: evolving a 12 Mbps-average service curve "
              "(no crossover in link mode)\n",
              cca_name.c_str());

  campaign::CampaignConfig cfg;
  cfg.add_cell(cell);
  campaign::Campaign c(cfg);
  campaign::ConsoleObserver console;
  c.add_observer(&console);
  const auto& report = c.run();

  const auto& result = report.cells.front();
  if (!result.winners.empty()) {
    std::printf("\nbest link trace drives %s to %.2f Mbps goodput "
                "(offered average: 12 Mbps)\n",
                cca_name.c_str(),
                result.winners.front().eval.goodput_mbps);
  }
  return 0;
}
