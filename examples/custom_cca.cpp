// Fuzzing a user-defined congestion control: implement the
// tcp::CongestionControl interface and hand a factory to the evaluator.
//
// The example algorithm is a deliberately naive delay-based AIAD controller
// ("NaiveVegas"): +1 segment per RTT when the last RTT is near the minimum,
// −1 when it is inflated. CC-Fuzz quickly finds traffic that exploits its
// lack of loss recovery urgency.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "cca/registry.h"
#include "fuzz/fuzzer.h"
#include "tcp/congestion_control.h"

using namespace ccfuzz;

namespace {

/// A naive delay-based CCA: additive increase while the path looks idle,
/// additive decrease when RTT inflates, halve on loss events.
class NaiveVegas final : public tcp::CongestionControl {
 public:
  void init(const tcp::SenderState& st) override {
    (void)st;
    cwnd_ = 10;
  }

  void on_ack(const tcp::SenderState& st, const tcp::AckEvent& ev,
              const tcp::RateSample& rs) override {
    (void)rs;
    if (st.in_recovery || st.in_loss || ev.newly_acked <= 0) return;
    if (st.last_rtt < DurationNs::zero() || st.min_rtt < DurationNs::zero()) {
      return;
    }
    // Queueing estimate: RTT inflation over the observed minimum.
    const double inflation = st.last_rtt / st.min_rtt;
    credit_ += ev.newly_acked;
    if (credit_ >= cwnd_) {
      credit_ = 0;
      if (inflation < 1.5) {
        ++cwnd_;
      } else if (inflation > 2.0) {
        cwnd_ = std::max<std::int64_t>(cwnd_ - 1, 2);
      }
    }
  }

  void on_congestion_event(const tcp::SenderState& st,
                           tcp::CongestionEvent ev) override {
    (void)st;
    if (ev == tcp::CongestionEvent::kEnterRecovery ||
        ev == tcp::CongestionEvent::kRto) {
      cwnd_ = std::max<std::int64_t>(cwnd_ / 2, 2);
    }
  }

  std::int64_t cwnd_segments() const override { return cwnd_; }
  const char* name() const override { return "naive-vegas"; }

 private:
  std::int64_t cwnd_ = 10;
  std::int64_t credit_ = 0;
};

}  // namespace

int main() {
  scenario::ScenarioConfig scfg;
  scfg.duration = TimeNs::seconds(5);

  // Baseline: how does it do on a clean link?
  const tcp::CcaFactory factory = [] { return std::make_unique<NaiveVegas>(); };
  const auto clean = scenario::run_scenario(scfg, factory, {});
  std::printf("naive-vegas clean-link goodput: %.2f Mbps\n",
              clean.goodput_mbps());

  trace::TrafficTraceModel tm;
  tm.max_packets = 2000;
  tm.duration = scfg.duration;

  fuzz::GaConfig gcfg;
  gcfg.population = 48;
  gcfg.islands = 4;
  gcfg.max_generations = 8;
  gcfg.seed = 3;

  fuzz::TraceEvaluator evaluator(
      scfg, factory, std::make_shared<fuzz::HighDelayScore>(10.0),
      fuzz::TraceScoreWeights{.per_packet = 1e-4});
  fuzz::Fuzzer fuzzer(gcfg, std::make_shared<fuzz::TrafficModel>(tm),
                      evaluator);

  std::printf("fuzzing naive-vegas for persistent queueing delay...\n");
  for (int g = 0; g < gcfg.max_generations; ++g) {
    const auto gs = fuzzer.step();
    std::printf("gen %2d  best p10-delay score=%7.4f s\n", gs.generation,
                gs.best_score);
  }
  std::printf("\nworst found: p10 queue delay %.1f ms (vs ~0 on clean link) "
              "with %lld cross packets\n",
              fuzzer.best().eval.p10_delay_s * 1e3,
              static_cast<long long>(fuzzer.best().eval.cross_sent));
  return 0;
}
