// Fuzzing a user-defined congestion control: implement the
// tcp::CongestionControl interface and hand a factory to the evaluator.
//
// The example algorithm is a deliberately naive delay-based AIAD controller
// ("NaiveVegas"): +1 segment per RTT when the last RTT is near the minimum,
// −1 when it is inflated. CC-Fuzz quickly finds traffic that exploits its
// lack of loss recovery urgency.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "campaign/campaign.h"
#include "scenario/runner.h"
#include "tcp/congestion_control.h"

using namespace ccfuzz;

namespace {

/// A naive delay-based CCA: additive increase while the path looks idle,
/// additive decrease when RTT inflates, halve on loss events.
class NaiveVegas final : public tcp::CongestionControl {
 public:
  void init(const tcp::SenderState& st) override {
    (void)st;
    cwnd_ = 10;
  }

  void on_ack(const tcp::SenderState& st, const tcp::AckEvent& ev,
              const tcp::RateSample& rs) override {
    (void)rs;
    if (st.in_recovery || st.in_loss || ev.newly_acked <= 0) return;
    if (st.last_rtt < DurationNs::zero() || st.min_rtt < DurationNs::zero()) {
      return;
    }
    // Queueing estimate: RTT inflation over the observed minimum.
    const double inflation = st.last_rtt / st.min_rtt;
    credit_ += ev.newly_acked;
    if (credit_ >= cwnd_) {
      credit_ = 0;
      if (inflation < 1.5) {
        ++cwnd_;
      } else if (inflation > 2.0) {
        cwnd_ = std::max<std::int64_t>(cwnd_ - 1, 2);
      }
    }
  }

  void on_congestion_event(const tcp::SenderState& st,
                           tcp::CongestionEvent ev) override {
    (void)st;
    if (ev == tcp::CongestionEvent::kEnterRecovery ||
        ev == tcp::CongestionEvent::kRto) {
      cwnd_ = std::max<std::int64_t>(cwnd_ / 2, 2);
    }
  }

  std::int64_t cwnd_segments() const override { return cwnd_; }
  const char* name() const override { return "naive-vegas"; }

 private:
  std::int64_t cwnd_ = 10;
  std::int64_t credit_ = 0;
};

}  // namespace

int main() {
  // A campaign cell for a CCA outside the registry: set `factory` and keep
  // `cca` as the display name.
  campaign::CellConfig cell;
  cell.cca = "naive-vegas";
  cell.factory = [] { return std::make_unique<NaiveVegas>(); };
  cell.scenario.mode = scenario::FuzzMode::kTraffic;
  cell.scenario.duration = TimeNs::seconds(5);
  cell.score = std::make_shared<fuzz::HighDelayScore>(10.0);
  cell.trace_weights = {.per_packet = 1e-4};
  cell.traffic_model.max_packets = 2000;
  cell.traffic_model.initial_packets = -1;
  cell.ga.population = 48;
  cell.ga.islands = 4;
  cell.ga.max_generations = 8;
  cell.ga.seed = 3;

  // Baseline: how does it do on a clean link?
  const auto clean = scenario::run_scenario(cell.scenario, cell.factory, {});
  std::printf("naive-vegas clean-link goodput: %.2f Mbps\n",
              clean.goodput_mbps());

  std::printf("fuzzing naive-vegas for persistent queueing delay...\n");
  campaign::CampaignConfig cfg;
  cfg.add_cell(cell);
  campaign::Campaign c(cfg);
  campaign::ConsoleObserver console;
  c.add_observer(&console);
  const auto& report = c.run();

  const auto& result = report.cells.front();
  if (!result.winners.empty()) {
    const auto& worst = result.winners.front();
    std::printf("\nworst found: p10 queue delay %.1f ms (vs ~0 on clean "
                "link) with %lld cross packets\n",
                worst.eval.p10_delay_s * 1e3,
                static_cast<long long>(worst.eval.cross_sent));
  }
  return 0;
}
