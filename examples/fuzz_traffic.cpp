// Traffic fuzzing (paper §3.3): a single-cell campaign that evolves a
// cross-traffic pattern hurting the chosen CCA, then writes the winner
// traces and history for replay.
//
//   ./fuzz_traffic [cca] [objective] [output-dir]
//
// objective: throughput | delay | loss | sendrate
#include <cstdio>
#include <memory>
#include <string>

#include "campaign/campaign.h"
#include "trace/hash.h"

using namespace ccfuzz;

int main(int argc, char** argv) {
  const std::string cca_name = argc > 1 ? argv[1] : "bbr";
  const std::string objective = argc > 2 ? argv[2] : "throughput";
  const std::string out_dir = argc > 3 ? argv[3] : "";

  std::shared_ptr<fuzz::ScoreFunction> score;
  if (objective == "delay") {
    score = std::make_shared<fuzz::HighDelayScore>(10.0);
  } else if (objective == "loss") {
    score = std::make_shared<fuzz::HighLossScore>();
  } else if (objective == "sendrate") {
    score = std::make_shared<fuzz::LowSendRateScore>();
  } else {
    score = std::make_shared<fuzz::LowUtilizationScore>();
  }

  campaign::CellConfig cell;
  cell.cca = cca_name;
  cell.scenario.mode = scenario::FuzzMode::kTraffic;
  cell.scenario.duration = TimeNs::seconds(5);
  cell.score = score;
  // Negative weight on injected/dropped packets → minimal attack vectors.
  cell.trace_weights = {.per_packet = 1e-4, .per_drop = 1e-3};
  cell.ga.population = 60;  // scaled-down defaults; paper uses 500/20/~40
  cell.ga.islands = 4;
  cell.ga.max_generations = 10;
  cell.ga.seed = 1;

  campaign::CampaignConfig cfg;
  cfg.add_cell(cell).output_dir(out_dir);

  campaign::Campaign c(cfg);
  campaign::ConsoleObserver console;
  c.add_observer(&console);
  const auto& report = c.run();

  const auto& result = report.cells.front();
  if (!result.winners.empty()) {
    const auto& best = result.winners.front();
    std::printf("\nbest trace %s: %zu cross packets → %s goodput %.2f Mbps, "
                "%lld RTOs, p10 delay %.1f ms\n",
                trace::hash_hex(best.trace_hash).c_str(), best.genome.size(),
                cca_name.c_str(), best.eval.goodput_mbps,
                static_cast<long long>(best.eval.rto_count),
                best.eval.p10_delay_s * 1e3);
  }
  if (!out_dir.empty()) {
    std::printf("saved winners under %s (replay with examples/replay_trace)\n",
                out_dir.c_str());
  }
  return 0;
}
