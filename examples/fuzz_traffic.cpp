// Traffic fuzzing (paper §3.3): evolve a cross-traffic pattern that hurts
// the chosen CCA, then save the best trace for replay.
//
//   ./fuzz_traffic [cca] [objective] [output.trace]
//
// objective: throughput | delay | loss | sendrate
#include <cstdio>
#include <memory>
#include <string>

#include "cca/registry.h"
#include "fuzz/fuzzer.h"
#include "trace/trace_io.h"

using namespace ccfuzz;

int main(int argc, char** argv) {
  const std::string cca_name = argc > 1 ? argv[1] : "bbr";
  const std::string objective = argc > 2 ? argv[2] : "throughput";
  const std::string out_path = argc > 3 ? argv[3] : "";

  scenario::ScenarioConfig scfg;
  scfg.duration = TimeNs::seconds(5);

  std::shared_ptr<fuzz::ScoreFunction> score;
  if (objective == "delay") {
    score = std::make_shared<fuzz::HighDelayScore>(10.0);
  } else if (objective == "loss") {
    score = std::make_shared<fuzz::HighLossScore>();
  } else if (objective == "sendrate") {
    score = std::make_shared<fuzz::LowSendRateScore>();
  } else {
    score = std::make_shared<fuzz::LowUtilizationScore>();
  }

  trace::TrafficTraceModel tm;
  tm.max_packets = 3000;
  tm.initial_packets = 1500;
  tm.duration = scfg.duration;

  fuzz::GaConfig gcfg;  // scaled-down defaults; paper uses 500/20/~40
  gcfg.population = 60;
  gcfg.islands = 4;
  gcfg.max_generations = 10;
  gcfg.seed = 1;

  fuzz::TraceEvaluator evaluator(
      scfg, cca::make_factory(cca_name), score,
      fuzz::TraceScoreWeights{.per_packet = 1e-4, .per_drop = 1e-3});
  fuzz::Fuzzer fuzzer(gcfg, std::make_shared<fuzz::TrafficModel>(tm),
                      evaluator);

  std::printf("fuzzing %s for %s (%d members, %d islands, %d generations)\n",
              cca_name.c_str(), score->name(), gcfg.population, gcfg.islands,
              gcfg.max_generations);
  for (int g = 0; g < gcfg.max_generations; ++g) {
    const auto gs = fuzzer.step();
    std::printf(
        "gen %2d  best=%9.3f  mean=%9.3f  top20 goodput=%5.2f Mbps  "
        "stalled=%d\n",
        gs.generation, gs.best_score, gs.mean_score,
        gs.topk_mean_goodput_mbps, gs.stalled_count);
  }

  const auto& best = fuzzer.best();
  std::printf("\nbest trace: %zu cross packets → %s goodput %.2f Mbps, "
              "%lld RTOs, p10 delay %.1f ms\n",
              best.genome.size(), cca_name.c_str(), best.eval.goodput_mbps,
              static_cast<long long>(best.eval.rto_count),
              best.eval.p10_delay_s * 1e3);
  if (!out_path.empty()) {
    trace::save_trace(out_path, best.genome);
    std::printf("saved to %s (replay with examples/replay_trace)\n",
                out_path.c_str());
  }
  return 0;
}
