// Fairness fuzzing (paper §6, "future work"): a 2-flow reno-vs-bbr campaign
// under the late_starter preset — an established Reno flow is joined mid-run
// by a BBR flow — scored by Jain unfairness, so the GA hunts cross-traffic
// schedules that wreck the flows' convergence to a fair share.
//
//   ./fuzz_fairness [output-dir] [generations] [population]
//
// Per-flow goodputs land in the report tree (summary.csv's
// best_flow_goodputs_mbps column, flow_goodputs_mbps in summary.json) and
// stream live to <output-dir>/progress.jsonl for dashboards. Each cell's
// winning trace is additionally replayed with full event recording and its
// per-flow rate series dumped to <cell>/winner_flow_rates.csv —
// scripts/plot_fairness.py turns that plus history.csv into the
// fairness-convergence figures.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/flow_metrics.h"
#include "campaign/campaign.h"
#include "campaign/report.h"

using namespace ccfuzz;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "fairness_out";
  const int generations = argc > 2 ? std::atoi(argv[2]) : 4;
  const int population = argc > 3 ? std::atoi(argv[3]) : 24;
  if (generations < 1 || population < 2) {
    std::fprintf(stderr,
                 "usage: fuzz_fairness [output-dir] [generations>=1] "
                 "[population>=2]\n");
    return 1;
  }

  // The paper's dumbbell, shared by two competing flows: flow 0 runs the
  // cell's CCA (reno) from t=0, flow 1 (bbr) joins a third into the run.
  scenario::ScenarioConfig dumbbell;
  dumbbell.duration = TimeNs::seconds(4);
  scenario::PresetOptions late;
  late.competitor = "bbr";

  fuzz::GaConfig ga;
  ga.population = population;
  ga.islands = 3;
  ga.max_generations = generations;
  ga.seed = 42;

  campaign::CampaignConfig cfg;
  cfg.ccas({"reno"})
      .base_scenario(dumbbell)
      .add_preset("late_starter", late)
      .score(std::make_shared<fuzz::JainFairnessScore>(),
             {.per_packet = 1e-4, .per_drop = 1e-3})
      .ga(ga)
      .winners(3)
      .output_dir(out_dir);

  campaign::Campaign c(cfg);
  campaign::ConsoleObserver console;
  std::filesystem::create_directories(out_dir);  // jsonl streams before the
                                                 // report writer makes it
  campaign::JsonlObserver jsonl(out_dir + "/progress.jsonl");
  c.add_observer(&console);
  c.add_observer(&jsonl);
  const auto& report = c.run();

  std::printf("\n%-36s %12s %10s %10s %8s\n", "cell", "unfairness",
              "reno Mbps", "bbr Mbps", "jain");
  for (const auto& cell : report.cells) {
    if (cell.winners.empty()) continue;
    const fuzz::Evaluation& best = cell.winners.front().eval;
    const double g0 =
        best.flow_goodput_mbps.size() > 0 ? best.flow_goodput_mbps[0] : 0.0;
    const double g1 =
        best.flow_goodput_mbps.size() > 1 ? best.flow_goodput_mbps[1] : 0.0;
    std::printf("%-36s %12.3f %10.2f %10.2f %8.3f\n", cell.cell.name.c_str(),
                cell.best_score(), g0, g1, best.jain_fairness);
  }
  // Replay each winner with full event recording and dump its per-flow
  // egress rate series — the raw material of the fairness timeline plots.
  for (const auto& cell : report.cells) {
    if (cell.winners.empty()) continue;
    const auto evaluator = campaign::make_evaluator(cell.cell);
    const scenario::RunResult run =
        evaluator.run_full(cell.winners.front().genome);
    std::vector<analysis::RateSeries> series;
    for (std::size_t f = 0; f < run.flow_count(); ++f) {
      series.push_back(
          analysis::flow_rate_series(run, analysis::Stream::kEgress, f));
    }
    if (series.empty() || series.front().time_s.empty()) continue;
    const std::string path = out_dir + "/" +
                             campaign::sanitize_cell_name(cell.cell.name) +
                             "/winner_flow_rates.csv";
    std::ofstream os(path);
    os << "time_s";
    for (std::size_t f = 0; f < series.size(); ++f) {
      os << ",flow" << f << "_mbps";
    }
    os << "\n";
    for (std::size_t i = 0; i < series.front().time_s.size(); ++i) {
      os << series.front().time_s[i];
      for (const auto& s : series) {
        os << ',' << (i < s.mbps.size() ? s.mbps[i] : 0.0);
      }
      os << "\n";
    }
  }

  std::printf(
      "\nreport: %s/summary.{csv,json} (per-flow goodputs), progress.jsonl "
      "(live JSONL stream), <cell>/winner_flow_rates.csv (plot with "
      "scripts/plot_fairness.py)\n",
      out_dir.c_str());
  return 0;
}
