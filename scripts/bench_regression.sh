#!/usr/bin/env bash
# Benchmark regression tracking: build Release, run the micro benches with
# JSON output, and write BENCH_sim.json at the repo root so the performance
# trajectory is recorded across PRs.
#
# Usage: scripts/bench_regression.sh [build-dir]
#   BENCH_MIN_TIME=0.5   per-benchmark min measurement time in seconds
#   BENCH_SMOKE=1        quick pass (tiny min time, no file update) — used by
#                        the smoke script and CI to check the benches run
#
# Note on build types: google-benchmark's JSON context reports
# "library_build_type" for the *benchmark library itself* — Debian ships a
# no-NDEBUG build that reports "debug" regardless of how ccfuzz is compiled.
# This script configures ccfuzz as Release, verifies that against the CMake
# cache, and stamps the verified type into the JSON as "app_build_type" so
# the perf trajectory records what was actually measured.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
MIN_TIME="${BENCH_MIN_TIME:-0.5}"
SMOKE="${BENCH_SMOKE:-0}"
if [[ "$SMOKE" == "1" ]]; then
  MIN_TIME="0.01"
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target micro_sim micro_ga -j"$(nproc)" >/dev/null

# Guard against a stale cache configured with another build type: the
# trajectory must never record a non-Release ccfuzz measurement.
APP_BUILD_TYPE="$(grep -E '^CMAKE_BUILD_TYPE:' "$BUILD_DIR/CMakeCache.txt" | cut -d= -f2)"
if [[ "$APP_BUILD_TYPE" != "Release" ]]; then
  echo "bench_regression: $BUILD_DIR is configured as '$APP_BUILD_TYPE', not Release" >&2
  exit 1
fi

# Exit 3 is the documented "benchmark library unavailable" code; every other
# non-zero exit is a real failure callers must not swallow.
if ! [[ -x "$BUILD_DIR/bench/micro_sim" ]]; then
  echo "bench_regression: micro benches not built (google-benchmark missing)" >&2
  exit 3
fi

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

# The sim filter is explicit so new hot-path benches (the far-band stress
# pair BM_EventQueueRtoHeavy / BM_Dumbbell16FlowSimulatedSecond included)
# are a deliberate part of the tracked trajectory, not an accident of
# whatever the binary happens to contain.
"$BUILD_DIR/bench/micro_sim" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_filter='BM_EventQueueChurn|BM_EventQueueChurnCold|BM_EventQueueRtoHeavy|BM_DumbbellSimulatedSecond|BM_DumbbellBbrSimulatedSecond|BM_Dumbbell4FlowSimulatedSecond|BM_Dumbbell16FlowSimulatedSecond|BM_DumbbellFullEventsSimulatedSecond|BM_DistPackets5000|BM_WindowedMaxFilter' \
  --benchmark_format=json >"$OUT/sim.json" 2>/dev/null
"$BUILD_DIR/bench/micro_ga" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_filter='BM_TrafficMutation|BM_TrafficCrossover|BM_RankSelection|BM_EvaluateBatch|BM_EliteArchive' \
  --benchmark_format=json >"$OUT/ga.json" 2>/dev/null

if [[ "$SMOKE" == "1" ]]; then
  # Smoke mode just proves the harness runs end to end.
  python3 - "$OUT/sim.json" "$OUT/ga.json" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    data = json.load(open(path))
    assert data["benchmarks"], f"no benchmarks in {path}"
print("bench smoke OK "
      f"({sum(len(json.load(open(p))['benchmarks']) for p in sys.argv[1:])} benchmarks)")
EOF
  exit 0
fi

APP_BUILD_TYPE="$APP_BUILD_TYPE" python3 - "$OUT/sim.json" "$OUT/ga.json" BENCH_sim.json <<'EOF'
import json, os, sys
sim, ga, dest = sys.argv[1], sys.argv[2], sys.argv[3]
merged = {"context": json.load(open(sim))["context"], "benchmarks": []}
# library_build_type describes the system benchmark library; the ccfuzz
# build type is what the trajectory actually measures.
merged["context"]["app_build_type"] = os.environ["APP_BUILD_TYPE"].lower()
for path in (sim, ga):
    merged["benchmarks"].extend(json.load(open(path))["benchmarks"])
json.dump(merged, open(dest, "w"), indent=1)
print(f"wrote {dest} ({len(merged['benchmarks'])} benchmarks, "
      f"app_build_type={merged['context']['app_build_type']})")
for b in merged["benchmarks"]:
    rate = f"  {b['items_per_second']:.4g} items/s" if "items_per_second" in b else ""
    print(f"  {b['name']}: {b['real_time']:.0f} {b['time_unit']}{rate}")
EOF
