#!/usr/bin/env python3
"""Soft benchmark regression gate.

Compares a fresh google-benchmark JSON file against the checked-in baseline
(BENCH_sim.json) and prints a GitHub-flavored markdown table of per-benchmark
deltas, suitable for $GITHUB_STEP_SUMMARY. Regressions beyond the threshold
emit `::warning` workflow commands; the exit code is always 0 — CI bench
runners (1 vCPU, noisy neighbors) are too jittery for a hard fail, but the
table makes every PR's perf delta reviewable at a glance.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]
"""
import argparse
import json
import sys


def load(path):
    """Parses a google-benchmark JSON file defensively.

    A missing, truncated, or hand-mangled file (crashed bench run, bad
    merge) degrades to an empty result set with a ::warning — this script
    is a soft gate and must never fail the job over its own inputs.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as e:
        sys.stderr.write(
            f"::warning title=bench compare::cannot read {path}: {e}\n")
        return {}, {}
    if not isinstance(data, dict):
        sys.stderr.write(
            f"::warning title=bench compare::{path}: not a JSON object\n")
        return {}, {}
    out = {}
    benchmarks = data.get("benchmarks", [])
    if not isinstance(benchmarks, list):
        benchmarks = []
    skipped = 0
    for b in benchmarks:
        # Aggregate entries (mean/median/stddev) would double-count.
        if not isinstance(b, dict) or b.get("run_type",
                                            "iteration") != "iteration":
            continue
        if ("name" not in b or not isinstance(b.get("real_time"), (int, float))
                or "time_unit" not in b):
            skipped += 1
            continue
        out[b["name"]] = b
    if skipped:
        sys.stderr.write(
            f"::warning title=bench compare::{path}: skipped {skipped} "
            f"malformed benchmark entr{'y' if skipped == 1 else 'ies'}\n")
    context = data.get("context", {})
    return out, context if isinstance(context, dict) else {}


def fmt_time(b):
    return f"{b['real_time']:.0f} {b['time_unit']}"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="warn when real_time regresses more than PCT percent")
    args = ap.parse_args()

    base, base_ctx = load(args.baseline)
    cur, cur_ctx = load(args.current)
    if not base and not cur:
        print("No readable benchmark data on either side; nothing to "
              "compare (see workflow warnings).")
        return 0

    print("### Benchmark deltas vs checked-in `BENCH_sim.json`")
    print()
    print(f"baseline app_build_type=`{base_ctx.get('app_build_type', '?')}`, "
          f"current app_build_type=`{cur_ctx.get('app_build_type', '?')}`, "
          f"warn threshold ±{args.threshold:.0f}%")
    print()
    print("| benchmark | baseline | current | Δ real_time |")
    print("|---|---:|---:|---:|")

    warnings = []
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            print(f"| `{name}` | {fmt_time(base[name])} | — (removed) | |")
            continue
        if name not in base:
            print(f"| `{name}` | — (new) | {fmt_time(cur[name])} | |")
            continue
        b, c = base[name], cur[name]
        if b["time_unit"] != c["time_unit"] or b["real_time"] <= 0:
            delta_txt = "n/a"
        else:
            delta = (c["real_time"] - b["real_time"]) / b["real_time"] * 100.0
            delta_txt = f"{delta:+.1f}%"
            if delta > args.threshold:
                delta_txt += " ⚠️"
                warnings.append((name, delta))
        print(f"| `{name}` | {fmt_time(b)} | {fmt_time(c)} | {delta_txt} |")

    print()
    if warnings:
        print(f"{len(warnings)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}% (soft gate — not failing the job):")
        print()
        for name, delta in warnings:
            print(f"- `{name}`: {delta:+.1f}%")
            # Workflow commands must go to the real log, not the summary.
            sys.stderr.write(
                f"::warning title=bench regression::{name} real_time "
                f"{delta:+.1f}% vs checked-in baseline\n")
    else:
        print("No benchmark regressed beyond the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
