#!/usr/bin/env python3
"""Fairness-convergence figures from a fairness campaign's report tree.

Reads what examples/fuzz_fairness writes:

  <report>/<cell>/history.csv            top20_jain_fairness and
                                         top20_flow_goodputs_mbps per
                                         generation — the GA's convergence
                                         onto unfair schedules
  <report>/<cell>/winner_flow_rates.csv  per-flow egress rate series of the
                                         winning trace's replay — the
                                         fairness timeline itself

and renders, per cell:

  <out>/<cell>_convergence.png     Jain index + per-flow goodputs vs
                                   generation
  <out>/<cell>_flow_rates.png      per-flow throughput vs time for the winner
  <out>/<cell>_fairness_panel.png  the figX-style panel: the winner's
                                   per-flow rates (top) over the
                                   instantaneous Jain index computed from
                                   the same series (bottom) — fairness
                                   collapse localized in time

matplotlib is optional: without it the same series are rendered as ASCII
charts on stdout (and the exit code stays 0), so the script is usable in
minimal CI containers with no extra dependencies.

Usage: plot_fairness.py REPORT_DIR [-o OUT_DIR]
"""
import argparse
import csv
import os
import sys

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    HAVE_MPL = True
except ImportError:
    HAVE_MPL = False


def read_history(path):
    """history.csv -> (generations, jain, per-flow goodput columns)."""
    gens, jain, flows = [], [], []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            gens.append(int(row["generation"]))
            jain.append(float(row["top20_jain_fairness"]))
            cell = row.get("top20_flow_goodputs_mbps", "-")
            per_flow = (
                [float(x) for x in cell.split(";")] if cell != "-" else []
            )
            flows.append(per_flow)
    n_flows = max((len(p) for p in flows), default=0)
    cols = [
        [p[i] if i < len(p) else 0.0 for p in flows] for i in range(n_flows)
    ]
    return gens, jain, cols


def read_flow_rates(path):
    """winner_flow_rates.csv -> (time_s, [flow series...])."""
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        cols = [[] for _ in header]
        for row in reader:
            for i, v in enumerate(row):
                cols[i].append(float(v))
    return cols[0], cols[1:], header[1:]


def instantaneous_jain(series):
    """Per-sample Jain fairness index across the flow series.

    jain(x) = (sum x)^2 / (n * sum x^2). Bins where every flow is idle have
    no allocation to be unfair about; they score a neutral 1.0 so the panel
    shows fairness *collapses*, not idle gaps.
    """
    if not series:
        return []
    n = len(series)
    out = []
    for vals in zip(*series):
        sq_sum = sum(v * v for v in vals)
        if sq_sum < 1e-12:
            out.append(1.0)
        else:
            total = sum(vals)
            out.append((total * total) / (n * sq_sum))
    return out


def ascii_chart(title, xs, series, labels, width=64, height=10):
    """Plain-text line chart: one mark per series, shared y-scale."""
    print(f"\n  {title}")
    flat = [v for s in series for v in s]
    if not flat or not xs:
        print("    (no data)")
        return
    lo, hi = min(flat), max(flat)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    marks = "ox+*#@"
    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        for i, v in enumerate(s):
            x = int(i * (width - 1) / max(1, len(s) - 1))
            y = int((v - lo) * (height - 1) / (hi - lo))
            grid[height - 1 - y][x] = marks[si % len(marks)]
    for r, row in enumerate(grid):
        label = f"{hi:8.2f} |" if r == 0 else (
            f"{lo:8.2f} |" if r == height - 1 else "         |"
        )
        print("    " + label + "".join(row))
    print("    " + " " * 9 + "+" + "-" * width)
    print(
        "    "
        + " " * 10
        + f"x: {xs[0]:g} .. {xs[-1]:g}   "
        + "  ".join(
            f"{marks[i % len(marks)]}={l}" for i, l in enumerate(labels)
        )
    )


def plot_cell(cell, hist, rates, out_dir):
    gens, jain, flow_cols = hist
    if HAVE_MPL:
        fig, (ax1, ax2) = plt.subplots(2, 1, figsize=(7, 6), sharex=True)
        ax1.plot(gens, jain, marker="o", color="black")
        ax1.set_ylabel("top-20 Jain index")
        ax1.set_title(f"{cell}: fairness convergence")
        ax1.grid(alpha=0.3)
        for i, col in enumerate(flow_cols):
            ax2.plot(gens, col, marker=".", label=f"flow {i}")
        ax2.set_xlabel("generation")
        ax2.set_ylabel("top-20 goodput (Mbps)")
        ax2.grid(alpha=0.3)
        if flow_cols:
            ax2.legend()
        fig.tight_layout()
        path = os.path.join(out_dir, f"{cell}_convergence.png")
        fig.savefig(path, dpi=120)
        plt.close(fig)
        print(f"wrote {path}")
    else:
        ascii_chart(f"{cell}: top-20 Jain index vs generation", gens, [jain],
                    ["jain"])
        if flow_cols:
            ascii_chart(
                f"{cell}: top-20 per-flow goodput (Mbps) vs generation",
                gens, flow_cols,
                [f"flow{i}" for i in range(len(flow_cols))],
            )

    if rates is None:
        return
    time_s, series, labels = rates
    if HAVE_MPL:
        fig, ax = plt.subplots(figsize=(7, 3.5))
        for label, s in zip(labels, series):
            ax.plot(time_s, s, label=label.replace("_mbps", ""))
        ax.set_xlabel("time (s)")
        ax.set_ylabel("egress rate (Mbps)")
        ax.set_title(f"{cell}: winning trace, per-flow throughput")
        ax.grid(alpha=0.3)
        ax.legend()
        fig.tight_layout()
        path = os.path.join(out_dir, f"{cell}_flow_rates.png")
        fig.savefig(path, dpi=120)
        plt.close(fig)
        print(f"wrote {path}")
    else:
        ascii_chart(
            f"{cell}: winner per-flow egress rate (Mbps) vs time",
            time_s, series, [l.replace("_mbps", "") for l in labels],
        )

    # The figX-style panel: the same flow-rate series with the instantaneous
    # Jain index computed underneath, so a fairness collapse is localized in
    # time instead of summarized as one end-of-run number.
    jain_t = instantaneous_jain(series)
    if not jain_t:
        return
    if HAVE_MPL:
        fig, (ax1, ax2) = plt.subplots(
            2, 1, figsize=(7, 5.5), sharex=True,
            gridspec_kw={"height_ratios": [2, 1]},
        )
        for label, s in zip(labels, series):
            ax1.plot(time_s, s, label=label.replace("_mbps", ""))
        ax1.set_ylabel("egress rate (Mbps)")
        ax1.set_title(f"{cell}: fairness over time (winning trace)")
        ax1.grid(alpha=0.3)
        ax1.legend()
        ax2.plot(time_s, jain_t, color="black")
        ax2.axhline(1.0, color="gray", linestyle=":", linewidth=1)
        ax2.set_ylim(0.0, 1.05)
        ax2.set_xlabel("time (s)")
        ax2.set_ylabel("Jain index")
        ax2.grid(alpha=0.3)
        fig.tight_layout()
        path = os.path.join(out_dir, f"{cell}_fairness_panel.png")
        fig.savefig(path, dpi=120)
        plt.close(fig)
        print(f"wrote {path}")
    else:
        ascii_chart(
            f"{cell}: instantaneous Jain index vs time (1.0 = fair)",
            time_s, [jain_t], ["jain"],
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report_dir", help="fuzz_fairness output directory")
    ap.add_argument("-o", "--out-dir", default=None,
                    help="where to write PNGs (default: REPORT_DIR)")
    args = ap.parse_args()

    out_dir = args.out_dir or args.report_dir
    os.makedirs(out_dir, exist_ok=True)
    if not HAVE_MPL:
        print("matplotlib not available: rendering ASCII charts instead")

    cells = 0
    for entry in sorted(os.listdir(args.report_dir)):
        cell_dir = os.path.join(args.report_dir, entry)
        hist_path = os.path.join(cell_dir, "history.csv")
        if not os.path.isfile(hist_path):
            continue
        rates_path = os.path.join(cell_dir, "winner_flow_rates.csv")
        rates = read_flow_rates(rates_path) if os.path.isfile(
            rates_path) else None
        plot_cell(entry, read_history(hist_path), rates, out_dir)
        cells += 1

    if cells == 0:
        print(f"no <cell>/history.csv under {args.report_dir}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
