#!/usr/bin/env bash
# Smoke test: build the library and run a 2-generation micro-campaign
# (3 CCAs × 2 modes) end to end, checking the report lands on disk.
#
# Usage: scripts/smoke_campaign.sh [build-dir]
#   CCFUZZ_SANITIZE=1  build with -Dccfuzz_sanitize=ON (ASan + UBSan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-smoke}"
CMAKE_FLAGS=()
if [[ "${CCFUZZ_SANITIZE:-0}" == "1" ]]; then
  CMAKE_FLAGS+=("-Dccfuzz_sanitize=ON")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}" >/dev/null
cmake --build "$BUILD_DIR" --target quickstart --target fuzz_fairness \
  --target fuzz_coverage --target crashsafe_campaign --target ccfuzz_tool \
  -j"$(nproc)"

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT
"$BUILD_DIR/examples/quickstart" "$OUT/campaign" 2 12

for f in summary.csv summary.json; do
  if [[ ! -f "$OUT/campaign/$f" ]]; then
    echo "smoke campaign FAILED: missing $f" >&2
    exit 1
  fi
done
# Every cell directory must have a history and at least one winner trace.
for d in "$OUT"/campaign/*/; do
  if [[ ! -f "$d/history.csv" || ! -f "$d/winner_0.trace" ]]; then
    echo "smoke campaign FAILED: incomplete cell report in $d" >&2
    exit 1
  fi
done
echo "smoke campaign OK ($(ls -d "$OUT"/campaign/*/ | wc -l) cells)"

# Multi-flow fairness smoke: a 2-flow reno-vs-bbr late-starter campaign must
# run end to end and report per-flow goodputs (a ';'-joined pair) plus the
# JSONL progress stream.
"$BUILD_DIR/examples/fuzz_fairness" "$OUT/fairness" 2 12
if ! grep -q "best_flow_goodputs_mbps" "$OUT/fairness/summary.csv"; then
  echo "fairness smoke FAILED: per-flow goodput column missing" >&2
  exit 1
fi
if ! tail -n +2 "$OUT/fairness/summary.csv" | grep -q ";"; then
  echo "fairness smoke FAILED: expected two ';'-joined flow goodputs" >&2
  exit 1
fi
if ! grep -q '"event":"campaign_end"' "$OUT/fairness/progress.jsonl"; then
  echo "fairness smoke FAILED: progress.jsonl incomplete" >&2
  exit 1
fi
echo "fairness smoke OK"

# Coverage-guided smoke: the MAP-Elites A/B must fill more cells than
# score-only on the same budget (fuzz_coverage exits 2 when it does not) and
# leave a reloadable archive behind. Runs at the example's defaults — the
# budget where the margin is pinned.
"$BUILD_DIR/examples/fuzz_coverage" "$OUT/coverage" >/dev/null
if [[ ! -s "$OUT/coverage/archive.txt" ]]; then
  echo "coverage smoke FAILED: archive.txt missing or empty" >&2
  exit 1
fi
if ! head -1 "$OUT/coverage/archive.txt" | grep -q "ccfuzz-archive v1"; then
  echo "coverage smoke FAILED: archive.txt lacks the v1 header" >&2
  exit 1
fi
echo "coverage smoke OK"

# Crash-resume smoke: start a throttled crash-safe campaign, SIGKILL it once
# the first checkpoint lands, rerun the same command, and require the resumed
# report to be byte-identical to an uninterrupted reference run.
"$BUILD_DIR/examples/crashsafe_campaign" "$OUT/crash-ref" 4 16 0 >/dev/null
"$BUILD_DIR/examples/crashsafe_campaign" "$OUT/crash" 4 16 200 >/dev/null &
victim_pid=$!
for _ in $(seq 1 500); do
  [[ -f "$OUT/crash/checkpoint/campaign.ckpt" ]] && break
  sleep 0.05
done
if [[ ! -f "$OUT/crash/checkpoint/campaign.ckpt" ]]; then
  echo "crash-resume smoke FAILED: no checkpoint appeared" >&2
  exit 1
fi
kill -KILL "$victim_pid" 2>/dev/null || true
wait "$victim_pid" 2>/dev/null || true
"$BUILD_DIR/examples/crashsafe_campaign" "$OUT/crash" 4 16 0 >/dev/null
for f in summary.csv summary.json; do
  if ! cmp -s "$OUT/crash/$f" "$OUT/crash-ref/$f"; then
    echo "crash-resume smoke FAILED: $f diverged after kill+resume" >&2
    exit 1
  fi
done
echo "crash-resume smoke OK"

# Distributed-campaign smoke: a 2-worker supervised run must survive one of
# its workers being SIGKILLed mid-generation — the supervisor restarts it
# from its shard checkpoint — and still merge a report byte-identical to the
# single-process run of the same matrix.
CCFUZZ="$BUILD_DIR/tools/ccfuzz"
MATRIX=(--ccas reno,cubic,bbr --generations 3 --population 12 --islands 2
        --seed 7 --duration-ms 800)
"$CCFUZZ" run --workers 0 --output "$OUT/dist-ref" "${MATRIX[@]}" >/dev/null
"$CCFUZZ" run --workers 2 --output "$OUT/dist" "${MATRIX[@]}" \
  --throttle-ms 200 >/dev/null &
supervisor_pid=$!
victim=""
for _ in $(seq 1 500); do
  for shard in 0 1; do
    d="$OUT/dist/shards/$shard"
    if [[ -f "$d/worker.pid" && -f "$d/checkpoint/campaign.ckpt" ]]; then
      victim="$(cat "$d/worker.pid")"
      break 2
    fi
  done
  sleep 0.05
done
if [[ -z "$victim" ]]; then
  echo "shard smoke FAILED: no killable worker appeared" >&2
  exit 1
fi
kill -KILL "$victim" 2>/dev/null || true
if ! wait "$supervisor_pid"; then
  echo "shard smoke FAILED: supervisor exited nonzero" >&2
  exit 1
fi
if ! grep -q '"event":"worker_restart"' "$OUT/dist/progress.jsonl"; then
  echo "shard smoke FAILED: supervisor never restarted the killed worker" >&2
  exit 1
fi
for f in summary.csv summary.json; do
  if ! cmp -s "$OUT/dist/$f" "$OUT/dist-ref/$f"; then
    echo "shard smoke FAILED: merged $f diverged from single-process run" >&2
    exit 1
  fi
done
echo "shard smoke OK (killed worker $victim; restarted, merged, byte-identical)"

# Chaos smoke: the same 2-worker campaign under a deterministic fault plan —
# each worker's first checkpoint write fails with ENOSPC (typed degrade, no
# abort) and each worker crashes hard (exit 86) right after its second
# completed checkpoint. The supervisor must back off, restart both, and the
# merged report must still be byte-identical to the fault-free reference.
CHAOS_LATCH="$OUT/chaos-latch"
mkdir -p "$CHAOS_LATCH"
CCFUZZ_FAULT_PLAN="latch=$CHAOS_LATCH;worker:enospc@1*1;worker:crash_checkpoint@2*1" \
  "$CCFUZZ" run --workers 2 --output "$OUT/chaos" "${MATRIX[@]}" >/dev/null
if ! grep -q '"event":"worker_backoff"' "$OUT/chaos/progress.jsonl"; then
  echo "chaos smoke FAILED: no backoff restart after the injected crash" >&2
  exit 1
fi
for f in summary.csv summary.json; do
  if ! cmp -s "$OUT/chaos/$f" "$OUT/dist-ref/$f"; then
    echo "chaos smoke FAILED: merged $f diverged under fault injection" >&2
    exit 1
  fi
done
if ! "$CCFUZZ" doctor --output "$OUT/chaos" >/dev/null; then
  echo "chaos smoke FAILED: doctor found problems after a clean finish" >&2
  exit 1
fi
echo "chaos smoke OK (ENOSPC + crash-at-checkpoint injected; report byte-identical)"

# Triage smoke: turn the reference campaign's winners into finding bundles,
# require every bundle's minimized trace to be no larger than its original
# (with at least one strictly smaller), and replay the corpus twice — both
# passes must exit 0, i.e. every bundle reproduces bit-deterministically.
"$CCFUZZ" triage --output "$OUT/dist-ref" "${MATRIX[@]}" \
  --minimize-evals 48 >/dev/null
bundles=0
shrunk=0
for d in "$OUT"/dist-ref/findings/*/; do
  [[ -f "$d/manifest.json" ]] || continue
  bundles=$((bundles + 1))
  orig="$(sed -n 's/^  "original_events": \([0-9]*\),$/\1/p' "$d/manifest.json")"
  mini="$(sed -n 's/^  "minimized_events": \([0-9]*\),$/\1/p' "$d/manifest.json")"
  if [[ -z "$orig" || -z "$mini" || "$mini" -gt "$orig" ]]; then
    echo "triage smoke FAILED: $d minimized ($mini) exceeds original ($orig)" >&2
    exit 1
  fi
  [[ "$mini" -lt "$orig" ]] && shrunk=$((shrunk + 1))
done
if [[ "$bundles" -eq 0 ]]; then
  echo "triage smoke FAILED: no finding bundles written" >&2
  exit 1
fi
if [[ "$shrunk" -eq 0 ]]; then
  echo "triage smoke FAILED: no bundle minimized below its original" >&2
  exit 1
fi
for pass in 1 2; do
  if ! "$CCFUZZ" replay --output "$OUT/dist-ref" "${MATRIX[@]}" >/dev/null; then
    echo "triage smoke FAILED: replay pass $pass drifted" >&2
    exit 1
  fi
done
if ! "$CCFUZZ" doctor --output "$OUT/dist-ref" "${MATRIX[@]}" >/dev/null; then
  echo "triage smoke FAILED: doctor rejected the findings corpus" >&2
  exit 1
fi
echo "triage smoke OK ($bundles bundles, $shrunk minimized; replayed twice)"

# Cheap benchmark-harness smoke: prove the micro benches still build and run
# (full regression numbers come from scripts/bench_regression.sh). Exit 3
# means google-benchmark is unavailable — the only failure we tolerate.
bench_status=0
BENCH_SMOKE=1 scripts/bench_regression.sh "$BUILD_DIR-bench" || bench_status=$?
if [[ $bench_status -eq 3 ]]; then
  echo "bench smoke SKIPPED (google-benchmark unavailable)"
elif [[ $bench_status -ne 0 ]]; then
  echo "bench smoke FAILED (exit $bench_status)" >&2
  exit 1
fi
